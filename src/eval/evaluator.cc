#include "eval/evaluator.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "analysis/stratification.h"
#include "obs/telemetry.h"
#include "recovery/fault.h"
#include "util/worker_pool.h"

namespace exdl {

namespace {

std::string FormatMillis(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

}  // namespace

std::string_view BudgetKindName(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kNone: return "none";
    case BudgetKind::kDeadline: return "deadline";
    case BudgetKind::kTuples: return "tuples";
    case BudgetKind::kArenaBytes: return "arena_bytes";
    case BudgetKind::kRoundDerivations: return "round_derivations";
    case BudgetKind::kCancelled: return "cancelled";
  }
  return "?";
}

EvalBudget EvalBudget::FromFlags(uint64_t deadline_ms, uint64_t max_tuples,
                                 uint64_t max_arena_bytes,
                                 const CancellationToken* cancellation) {
  EvalBudget b;
  b.deadline_ms = deadline_ms;
  b.max_tuples = max_tuples;
  b.max_arena_bytes = max_arena_bytes;
  b.cancellation = cancellation;
  return b;
}

EvalBudget EvalBudget::FromEnv() { return FromEnv(EvalBudget()); }

EvalBudget EvalBudget::FromEnv(EvalBudget base) {
  // Every budget consumer (exdlc, bench_util, the query service) funnels
  // through this one call site, so the legacy-name deprecation fires at
  // most once per process regardless of how many budgets are resolved.
  static std::atomic<bool> warned_legacy{false};
  auto env_u64 = [&](const char* primary, const char* legacy) -> uint64_t {
    const char* v = std::getenv(primary);
    if (v == nullptr || *v == '\0') {
      v = std::getenv(legacy);
      if (v != nullptr && *v != '\0' &&
          !warned_legacy.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "warning: %s is deprecated; use the EXDL_BUDGET_* "
                     "names (see evaluator.h precedence table)\n",
                     legacy);
      }
    }
    if (v == nullptr || *v == '\0') return 0;
    return std::strtoull(v, nullptr, 10);
  };
  if (base.deadline_ms == 0) {
    base.deadline_ms =
        env_u64("EXDL_BUDGET_DEADLINE_MS", "EXDL_BENCH_DEADLINE_MS");
  }
  if (base.max_tuples == 0) {
    base.max_tuples =
        env_u64("EXDL_BUDGET_MAX_TUPLES", "EXDL_BENCH_MAX_TUPLES");
  }
  if (base.max_arena_bytes == 0) {
    base.max_arena_bytes =
        env_u64("EXDL_BUDGET_MAX_ARENA_BYTES", "EXDL_BENCH_MAX_BYTES");
  }
  return base;
}

EvalStats& EvalStats::operator+=(const EvalStats& o) {
  rounds += o.rounds;
  rule_firings += o.rule_firings;
  tuples_inserted += o.tuples_inserted;
  duplicate_inserts += o.duplicate_inserts;
  index_probes += o.index_probes;
  rows_matched += o.rows_matched;
  rules_retired += o.rules_retired;
  eval_seconds += o.eval_seconds;
  max_round_seconds = std::max(max_round_seconds, o.max_round_seconds);
  if (o.budget_tripped != BudgetKind::kNone) budget_tripped = o.budget_tripped;
  return *this;
}

std::string EvalStats::ToString() const {
  std::string out;
  out += "rounds=" + std::to_string(rounds);
  out += " firings=" + std::to_string(rule_firings);
  out += " inserted=" + std::to_string(tuples_inserted);
  out += " duplicates=" + std::to_string(duplicate_inserts);
  out += " probes=" + std::to_string(index_probes);
  out += " rows=" + std::to_string(rows_matched);
  out += " retired=" + std::to_string(rules_retired);
  out += " eval_ms=" + FormatMillis(eval_seconds);
  out += " max_round_ms=" + FormatMillis(max_round_seconds);
  if (budget_tripped != BudgetKind::kNone) {
    out += " budget_tripped=";
    out += BudgetKindName(budget_tripped);
  }
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;
using SizeMap = std::unordered_map<PredId, uint32_t>;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct RowRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
  bool empty() const { return lo >= hi; }
};

/// A buffered derivation: head tuple awaiting end-of-round flush (so that
/// index row-id lists are never mutated while being iterated). The tuple's
/// values live in the owning buffer's flat value arena — emitting a fact
/// allocates nothing beyond amortized vector growth.
struct PendingFact {
  PredId pred;
  size_t begin;     ///< Offset of the first tuple in the owner's value arena.
  uint32_t len;     ///< Tuple arity.
  uint32_t rule;    ///< Firing rule index (telemetry attribution at flush).
  /// Number of consecutive tuples (stride `len`) this entry covers. The
  /// bitset kernels emit all of a variant's derivations with one pred /
  /// len / rule and no provenance, so they extend one run instead of
  /// buffering a fact per derivation; the generic descent always uses 1.
  uint32_t count = 1;
  Provenance prov;  ///< Only filled when recording provenance.
};

/// Key view over a literal's index columns resolved against a register
/// file (see HashKeyView): constants come from the plan, the rest from
/// `regs`. Lets index probes and anti-join membership tests hash directly
/// from the evaluator's registers with no key materialization.
struct RegKey {
  const LiteralStep* step;
  const Value* regs;
  size_t size() const { return step->index_columns.size(); }
  Value operator[](size_t i) const {
    const ArgSpec& a = step->args[step->index_columns[i]];
    return a.kind == ArgSpec::Kind::kConst ? a.const_value : regs[a.reg];
  }
};

/// Key view over an all-constant argument list (single-tuple heads).
struct ConstArgsKey {
  const std::vector<ArgSpec>* args;
  size_t size() const { return args->size(); }
  Value operator[](size_t i) const { return (*args)[i].const_value; }
};

// The persistent fork-join WorkerPool used for parallelized rule variants
// lives in util/worker_pool.h (extracted so the query service can reuse
// it); the evaluator spawns one per evaluation and reuses it every round.

/// Per-worker evaluation state. Serial evaluation uses one of these;
/// parallel variants give each worker its own, then merge buffers in
/// partition order (so the flushed insertion order — and therefore every
/// row id, relation, and answer — matches serial evaluation exactly).
struct DescentState {
  std::vector<Value> regs;
  std::vector<char> reg_set;
  std::vector<TupleRef> path;  ///< Provenance spine (serial only).
  EvalStats stats;
  std::vector<PendingFact> buffer;
  std::vector<Value> values;  ///< Flat arena backing buffer's tuples.
  /// Rows processed since the last cooperative budget check (governed
  /// evaluation only; see Engine::kBudgetCheckStride).
  uint32_t rows_since_check = 0;
  /// Index into `buffer` of the kernel emission run currently being
  /// extended, or SIZE_MAX when none is open (see PendingFact::count).
  size_t open_run = static_cast<size_t>(-1);
  /// 64-bit words read by the bitset kernels on this participant's
  /// partitions (storage.representation.words_scanned after the merge).
  uint64_t words_scanned = 0;
  /// Bitset-kernel scratch: the surviving-values mask of the current
  /// all-unary variant partition (reused across variants; sized to the
  /// outer relation's bitset).
  std::vector<uint64_t> mask;
  /// This participant's private metrics shard (null when telemetry is
  /// off). Written only by the owning thread, merged at round boundaries.
  obs::MetricsShard* shard = nullptr;
};

/// One pre-resolved unary membership test of a bitset-kernel variant:
/// which bitset to test, with what key, positive or anti-join. `active`
/// is false for negated steps over absent/empty relations (the test
/// passes for every row and counts no probe, matching the generic path).
struct BitProbe {
  const UnaryBitset* bits = nullptr;
  bool negated = false;
  bool active = true;
  bool const_key = false;
  Value key_const = 0;
  uint32_t key_reg = 0;
};

/// Begin-on-construct / end-on-destruct trace span that collapses to two
/// null checks when telemetry is off.
struct SpanGuard {
  SpanGuard(obs::Telemetry* t, std::string name) {
    if (t != nullptr) {
      trace = &t->trace();
      id = trace->Begin(std::move(name));
    }
  }
  ~SpanGuard() {
    if (trace != nullptr) trace->End(id);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  obs::Trace* trace = nullptr;
  obs::SpanId id = obs::kDroppedSpan;
};

class Engine {
 public:
  Engine(const Program& program, const EvalOptions& options)
      : program_(program), options_(options) {}

  Result<EvalResult> Run(const Database& input) { return RunOwned(input.Clone()); }

  /// Evaluates on `input` itself (by value: the caller either moved it in
  /// or paid for the Clone in Run above). Keeping the worked-on database
  /// uniquely owned means inserts never trigger a copy-on-write payload
  /// detach — the property standing-query maintenance depends on.
  Result<EvalResult> RunOwned(Database input) {
    eval_begin_ = Clock::now();
    // The bitset kernels never record provenance (they have no per-row
    // descent spine); provenance runs take the generic path for every
    // rule, counted as fallbacks.
    use_bitset_ = UseBitsetKernels(options_.representation) &&
                  !options_.record_provenance;
    rep_stats_.mode = options_.representation;
    pool_min_delta_rows_ = ResolvePoolMinDeltaRows();
    EXDL_RETURN_IF_ERROR(Compile());
    SetupObs();
    SpanGuard eval_span(obs_.t, "eval");
    EvalResult result;
    result.db = std::move(input);
    db_ = &result.db;

    governed_ = options_.budget.any();
    if (options_.budget.deadline_ms != 0) {
      deadline_ = eval_begin_ +
                  std::chrono::milliseconds(options_.budget.deadline_ms);
    }

    // Stratify when negation is present; otherwise one stratum.
    std::vector<std::vector<size_t>> strata;
    if (program_.HasNegation()) {
      EXDL_ASSIGN_OR_RETURN(Stratification st, Stratify(program_));
      strata.resize(static_cast<size_t>(st.num_strata));
      for (size_t i = 0; i < rules_.size(); ++i) {
        strata[static_cast<size_t>(
                   st.StratumOf(rules_[i].plan.head_pred))]
            .push_back(i);
      }
    } else {
      strata.emplace_back();
      for (size_t i = 0; i < rules_.size(); ++i) strata[0].push_back(i);
    }

    // Make sure head relations exist so sizes/deltas are well defined.
    for (const CompiledRule& cr : rules_) {
      db_->GetOrCreate(cr.plan.head_pred,
                       static_cast<uint32_t>(cr.plan.head_args.size()));
    }
    // Size snapshot, maintained incrementally by Flush from here on.
    sizes_.clear();
    total_tuples_ = 0;
    arena_bytes_ = 0;
    for (const auto& [pred, rel] : db_->relations()) {
      sizes_[pred] = static_cast<uint32_t>(rel.size());
      total_tuples_ += rel.size();
      arena_bytes_ += rel.arena_bytes();
    }
    // A resume picks the fixpoint up at the checkpointed stratum's round
    // boundary: completed strata are skipped entirely, counters/retired
    // rules/deadline credit are restored, and the resume stratum re-enters
    // its delta loop with the snapshot's watermarks.
    size_t first_stratum = 0;
    if (options_.resume != nullptr) {
      EXDL_RETURN_IF_ERROR(RestoreCursor(strata.size()));
      first_stratum = options_.resume->stratum;
    }

    // The input alone may already bust a budget (or the token may be
    // pre-cancelled): stop before deriving anything.
    if (governed_) CheckRoundBudgets();

    bool stop = false;
    for (size_t si = first_stratum; si < strata.size(); ++si) {
      if (stop || Tripped()) break;
      EXDL_RETURN_IF_ERROR(RunFixpoint(si, strata[si], &stop));
    }

    // Catch shard contents written since the last round boundary (e.g. the
    // partial work of a discarded round); workers are quiescent here.
    MergeShards();

    stats_.eval_seconds = resumed_seconds_ + SecondsSince(eval_begin_);
    const BudgetKind trip = static_cast<BudgetKind>(
        trip_.load(std::memory_order_relaxed));
    if (trip != BudgetKind::kNone) {
      stats_.budget_tripped = trip;
      result.termination = TripStatus(trip);
      if (obs_.t != nullptr) {
        obs_.t->trace().Event(std::string("event:budget_trip:") +
                              std::string(BudgetKindName(trip)));
        obs_.m->Add(obs_.trip_counters[static_cast<size_t>(trip)], 1);
      }
    }
    for (const auto& [pred, rel] : db_->relations()) {
      if (rel.arity() == 1) ++rep_stats_.bitset_relations;
    }
    if (obs_.t != nullptr) {
      obs_.m->Set(obs_.tuples_gauge, static_cast<double>(db_->TotalTuples()));
      obs_.m->Set(obs_.arena_bytes_gauge,
                  static_cast<double>(db_->TotalArenaBytes()));
      obs_.m->Set(obs_.rehashes_gauge,
                  static_cast<double>(db_->TotalRehashes()));
      obs_.m->Set(obs_.rep_bitset_relations_gauge,
                  static_cast<double>(rep_stats_.bitset_relations));
      obs_.m->Add(obs_.rep_words_scanned,
                  static_cast<double>(rep_stats_.words_scanned));
      obs_.m->Add(obs_.rep_fallbacks,
                  static_cast<double>(rep_stats_.fallbacks));
    }
    result.stats = stats_;
    result.representation = rep_stats_;
    result.provenance = std::move(provenance_);
    if (program_.query() && !options_.skip_answers) {
      result.answers = ExtractAnswers(*program_.query(), result.db);
      if (program_.query()->IsGround()) {
        result.ground_query_true = !result.answers.empty() || GroundQueryIn();
      }
    }
    return result;
  }

 private:
  /// Semi-naive (or naive) fixpoint over one stratum's rules. Relations of
  /// lower strata are fixed; only this stratum's head predicates grow.
  Status RunFixpoint(size_t stratum_index,
                     const std::vector<size_t>& rule_indices, bool* stop) {
    std::vector<PredId> growing;  // this stratum's head predicates
    growing.reserve(rule_indices.size());
    for (size_t i : rule_indices) {
      const PredId p = rules_[i].plan.head_pred;
      if (std::find(growing.begin(), growing.end(), p) == growing.end()) {
        growing.push_back(p);
      }
    }
    auto is_growing = [&](PredId p) {
      return std::find(growing.begin(), growing.end(), p) != growing.end();
    };
    // Delta variants are only needed for body literals over predicates
    // that can still grow; the set is fixed for the whole stratum, so
    // resolve it once per rule instead of per round.
    std::vector<std::vector<size_t>> delta_steps_of(rule_indices.size());
    for (size_t k = 0; k < rule_indices.size(); ++k) {
      const CompiledRule& cr = rules_[rule_indices[k]];
      for (size_t s : cr.idb_steps) {
        if (is_growing(cr.plan.steps[s].pred)) {
          delta_steps_of[k].push_back(s);
        }
      }
    }
    // IVM re-entry (DESIGN.md §16): body literals over extra_delta_preds
    // also read deltas — new EDB facts appended to a maintained database,
    // which idb_steps cannot name (it only lists derived predicates). Scan
    // every step: EDB literals are not in idb_steps. Negated steps stay
    // full reads (anti-joins have no delta semantics), and predicates that
    // already grow in this stratum keep their single existing variant.
    if (!options_.extra_delta_preds.empty()) {
      const std::vector<PredId>& extra = options_.extra_delta_preds;
      for (size_t k = 0; k < rule_indices.size(); ++k) {
        const CompiledRule& cr = rules_[rule_indices[k]];
        for (size_t s = 0; s < cr.plan.steps.size(); ++s) {
          const LiteralStep& step = cr.plan.steps[s];
          if (step.negated || is_growing(step.pred)) continue;
          if (std::find(extra.begin(), extra.end(), step.pred) ==
              extra.end()) {
            continue;
          }
          delta_steps_of[k].push_back(s);
        }
        std::sort(delta_steps_of[k].begin(), delta_steps_of[k].end());
      }
    }

    Clock::time_point round_begin;
    SizeMap delta_lo;
    const bool resuming = options_.resume != nullptr &&
                          stratum_index == options_.resume->stratum;
    if (resuming) {
      // The checkpoint was cut at a completed round boundary of this
      // stratum (round 0 included): skip straight to the delta loop with
      // the snapshot's watermarks. Predicates absent from the cursor have
      // no delta (watermark == current size).
      delta_lo = sizes_;
      for (const auto& [pred, lo] : options_.resume->delta_lo) {
        delta_lo[pred] = lo;
      }
    } else {
      // Round 0: fire every rule of the stratum over the full database.
      // sizes_ only changes at FinishRound's flush, so within a round it
      // IS the pre-round snapshot — variants read it directly, no copy.
      round_begin = Clock::now();
      round_derivations_.store(0, std::memory_order_relaxed);
      delta_lo = sizes_;
      {
        SpanGuard round_span(
            obs_.t, obs_.t != nullptr
                        ? "round:" + std::to_string(stats_.rounds)
                        : std::string());
        for (size_t i : rule_indices) {
          FireVariant(rules_[i], /*delta_step=*/kNoDelta, sizes_, sizes_);
        }
        if (Tripped()) {
          DiscardRound();
          return Status::Ok();
        }
        FinishRound(round_begin, round_span.id);
      }
      if (!injected_.ok()) return injected_;
      EXDL_RETURN_IF_ERROR(MaybeCheckpoint(stratum_index, delta_lo));
      if (governed_ && CheckRoundBudgets()) return Status::Ok();
    }

    *stop = ShouldStopOnGroundQuery();
    while (!*stop) {
      // Converged when no live rule has a non-empty delta to consume. A
      // predicate can grow without any rule reading it (e.g. the query
      // head); firing a round for it would flush nothing — semi-naive
      // skips that empty trailing round, naive must keep refiring until
      // nothing grows at all.
      bool any_delta = false;
      if (options_.seminaive) {
        for (size_t k = 0; k < rule_indices.size() && !any_delta; ++k) {
          const CompiledRule& cr = rules_[rule_indices[k]];
          if (retired_.count(cr.rule_index) > 0) continue;
          for (size_t step : delta_steps_of[k]) {
            PredId p = cr.plan.steps[step].pred;
            auto sit = sizes_.find(p);
            const uint32_t sz = sit == sizes_.end() ? 0 : sit->second;
            auto dit = delta_lo.find(p);
            if ((dit == delta_lo.end() ? 0 : dit->second) < sz) {
              any_delta = true;
              break;
            }
          }
        }
      } else {
        for (const auto& [pred, sz] : sizes_) {
          if (is_growing(pred) && delta_lo[pred] < sz) {
            any_delta = true;
            break;
          }
        }
      }
      if (!any_delta) break;
      if (options_.max_rounds != 0 && stats_.rounds >= options_.max_rounds) {
        return Status::FailedPrecondition(
            "fixpoint did not converge within max_rounds");
      }
      round_begin = Clock::now();
      round_derivations_.store(0, std::memory_order_relaxed);
      {
        SpanGuard round_span(
            obs_.t, obs_.t != nullptr
                        ? "round:" + std::to_string(stats_.rounds)
                        : std::string());
        for (size_t k = 0; k < rule_indices.size(); ++k) {
          const CompiledRule& cr = rules_[rule_indices[k]];
          if (retired_.count(cr.rule_index) > 0) continue;
          if (options_.seminaive) {
            // One variant per growing body literal: that literal reads the
            // delta, the others read the pre-round database.
            for (size_t step : delta_steps_of[k]) {
              PredId p = cr.plan.steps[step].pred;
              auto sit = sizes_.find(p);
              const uint32_t sz = sit == sizes_.end() ? 0 : sit->second;
              auto dit = delta_lo.find(p);
              const uint32_t lo = dit == delta_lo.end() ? 0 : dit->second;
              if (lo >= sz) continue;  // empty delta
              FireVariant(cr, step, sizes_, delta_lo);
            }
          } else if (!delta_steps_of[k].empty()) {
            // Naive: refire over full relations (rules with no growing body
            // literal can produce nothing new after round 0).
            FireVariant(cr, kNoDelta, sizes_, sizes_);
          }
        }
        if (Tripped()) {
          // Mid-round trip: drop the partial round so the database stays at
          // the last round boundary (a consistent prefix of the fixpoint).
          DiscardRound();
          return Status::Ok();
        }
        // Advance the watermarks to the pre-flush sizes before FinishRound
        // mutates sizes_.
        for (const auto& [pred, sz] : sizes_) delta_lo[pred] = sz;
        FinishRound(round_begin, round_span.id);
      }
      if (!injected_.ok()) return injected_;
      EXDL_RETURN_IF_ERROR(MaybeCheckpoint(stratum_index, delta_lo));
      if (governed_ && CheckRoundBudgets()) return Status::Ok();
      *stop = ShouldStopOnGroundQuery();
    }
    return Status::Ok();
  }

  /// Validates and installs the resume cursor: restores counters, retired
  /// rules, and charges already-spent wall-clock against the deadline
  /// budget. Called after Compile, before any stratum runs.
  Status RestoreCursor(size_t num_strata) {
    const EvalCursor& c = *options_.resume;
    if (c.stratum >= num_strata) {
      return Status::InvalidArgument(
          "resume cursor stratum out of range for this program");
    }
    for (uint32_t r : c.retired_rules) {
      if (r >= rules_.size()) {
        return Status::InvalidArgument("resume cursor retires unknown rule");
      }
      retired_.insert(r);
    }
    stats_.rounds = c.rounds;
    stats_.rule_firings = c.rule_firings;
    stats_.tuples_inserted = c.tuples_inserted;
    stats_.duplicate_inserts = c.duplicate_inserts;
    stats_.index_probes = c.index_probes;
    stats_.rows_matched = c.rows_matched;
    stats_.rules_retired = c.rules_retired;
    stats_.max_round_seconds = c.max_round_seconds;
    resumed_seconds_ = c.eval_seconds;
    if (options_.budget.deadline_ms != 0) {
      // The deadline budget is for the whole logical evaluation, not this
      // process: shift it back by the time the checkpointed run spent.
      deadline_ -= std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(resumed_seconds_));
    }
    return Status::Ok();
  }

  /// Hands the sink a consistent (database, cursor) snapshot every
  /// `checkpoint_every_rounds` completed rounds. Called right after a
  /// round-boundary flush (and after the round span closed, so the
  /// "checkpoint:<round>" span nests directly under "eval"). A sink
  /// failure is a hard error: evaluation fails closed and the sink's last
  /// successful write remains the durable state.
  Status MaybeCheckpoint(size_t stratum_index, const SizeMap& delta_lo) {
    if (options_.checkpoint_sink == nullptr) return Status::Ok();
    const uint32_t every = std::max(1u, options_.checkpoint_every_rounds);
    if (stats_.rounds % every != 0) return Status::Ok();
    SpanGuard span(obs_.t, obs_.t != nullptr
                               ? "checkpoint:" + std::to_string(stats_.rounds)
                               : std::string());
    const Clock::time_point begin = Clock::now();
    EvalCursor cursor;
    cursor.stratum = static_cast<uint32_t>(stratum_index);
    cursor.rounds = stats_.rounds;
    cursor.rule_firings = stats_.rule_firings;
    cursor.tuples_inserted = stats_.tuples_inserted;
    cursor.duplicate_inserts = stats_.duplicate_inserts;
    cursor.index_probes = stats_.index_probes;
    cursor.rows_matched = stats_.rows_matched;
    cursor.rules_retired = stats_.rules_retired;
    cursor.eval_seconds = resumed_seconds_ + SecondsSince(eval_begin_);
    cursor.max_round_seconds = stats_.max_round_seconds;
    cursor.delta_lo.assign(delta_lo.begin(), delta_lo.end());
    std::sort(cursor.delta_lo.begin(), cursor.delta_lo.end());
    cursor.retired_rules.reserve(retired_.size());
    for (size_t r : retired_) {
      cursor.retired_rules.push_back(static_cast<uint32_t>(r));
    }
    std::sort(cursor.retired_rules.begin(), cursor.retired_rules.end());
    Result<uint64_t> bytes =
        options_.checkpoint_sink->Write(program_.ctx(), *db_, cursor);
    if (!bytes.ok()) return bytes.status();
    if (obs_.t != nullptr) {
      obs_.m->Add(obs_.checkpoint_writes, 1);
      obs_.m->Add(obs_.checkpoint_bytes, static_cast<double>(*bytes));
      obs_.m->Observe(obs_.checkpoint_seconds_hist, SecondsSince(begin));
    }
    return Status::Ok();
  }

 private:
  static constexpr size_t kNoDelta = static_cast<size_t>(-1);
  /// Minimum outer rows per worker before a variant is worth splitting.
  static constexpr uint32_t kMinRowsPerWorker = 64;
  /// Default EvalOptions::pool_min_delta_rows when neither the option nor
  /// EXDL_POOL_MIN_DELTA_ROWS supplies one (see ResolvePoolMinDeltaRows).
  static constexpr uint32_t kDefaultPoolMinDeltaRows = 4096;
  /// Rows between cooperative deadline/cancellation checks inside a round
  /// (per descent state, so each pool worker checks independently).
  static constexpr uint32_t kBudgetCheckStride = 1024;

  bool Tripped() const {
    return trip_.load(std::memory_order_relaxed) != 0;
  }

  /// Records the first budget trip; later trips lose the race and keep
  /// the original reason. Safe from any worker thread.
  void Trip(BudgetKind kind) {
    uint32_t expected = 0;
    trip_.compare_exchange_strong(expected, static_cast<uint32_t>(kind),
                                  std::memory_order_relaxed);
  }

  /// Round-boundary check of every budget. The database was just flushed,
  /// so tripping here leaves a consistent state. Returns true if tripped.
  bool CheckRoundBudgets() {
    const EvalBudget& b = options_.budget;
    if (b.cancellation != nullptr && b.cancellation->cancelled()) {
      Trip(BudgetKind::kCancelled);
    } else if (b.deadline_ms != 0 && Clock::now() >= deadline_) {
      Trip(BudgetKind::kDeadline);
    } else if (b.max_tuples != 0 && total_tuples_ > b.max_tuples) {
      Trip(BudgetKind::kTuples);
    } else if (b.max_arena_bytes != 0 && arena_bytes_ > b.max_arena_bytes) {
      Trip(BudgetKind::kArenaBytes);
    }
    return Tripped();
  }

  /// Mid-round check (every kBudgetCheckStride rows): only the budgets
  /// that can trip between round boundaries — cancellation and the
  /// deadline; tuple/byte totals move at flush time only. Returns true if
  /// this descent should stop enumerating.
  bool CheckMidRound() {
    if (Tripped()) return true;
    const EvalBudget& b = options_.budget;
    if (b.cancellation != nullptr && b.cancellation->cancelled()) {
      Trip(BudgetKind::kCancelled);
    } else if (b.deadline_ms != 0 && Clock::now() >= deadline_) {
      Trip(BudgetKind::kDeadline);
    }
    return Tripped();
  }

  /// Drops the buffered (partial) round after a mid-round trip.
  void DiscardRound() {
    round_buffer_.clear();
    round_values_.clear();
    pool_skipped_this_round_ = false;
  }

  /// Round tail shared by round 0 and the delta rounds: flush the buffered
  /// derivations, bump round stats, record round telemetry, and merge the
  /// metric shards (the workers are quiescent here).
  void FinishRound(Clock::time_point round_begin, obs::SpanId round_span) {
    // A fault injected earlier in the round (pool dispatch) means some
    // variants never ran: the buffered partial round must not be flushed.
    if (!injected_.ok()) {
      DiscardRound();
      return;
    }
    // Fault site: arena growth at the flush. An injected failure discards
    // the buffered round and surfaces as a hard kInternal error, leaving
    // the database (and any on-disk checkpoint) at the previous boundary.
    if (FaultPlan::Global().armed() &&
        FaultPlan::Global().ShouldFail("storage.arena_grow")) {
      injected_ = Status::Internal("injected fault at storage.arena_grow");
      DiscardRound();
      return;
    }
    if (pool_skipped_this_round_) {
      // At least one variant this round stayed inline because its delta
      // was under the pool threshold (the metric is how EXPERIMENTS.md E1
      // shows the gate firing on the chain workloads).
      pool_skipped_this_round_ = false;
      if (obs_.t != nullptr) obs_.m->Add(obs_.pool_skipped_rounds, 1);
    }
    const uint64_t inserted_before = stats_.tuples_inserted;
    Flush();
    ++stats_.rounds;
    const double secs = SecondsSince(round_begin);
    stats_.max_round_seconds = std::max(stats_.max_round_seconds, secs);
    ApplyBooleanCut();
    if (obs_.t != nullptr) {
      const uint64_t grew = stats_.tuples_inserted - inserted_before;
      obs_.m->Add(obs_.rounds_counter, 1);
      obs_.m->Observe(obs_.round_growth_hist, static_cast<double>(grew));
      obs_.m->Observe(obs_.round_seconds_hist, secs);
      obs_.t->trace().SetAttr(round_span, "inserted",
                              static_cast<double>(grew));
      MergeShards();
    }
  }

  /// Registers the evaluator's metrics and sizes the per-participant
  /// shards. Everything must be registered before the shards are created
  /// (a shard's cell layout is fixed at creation).
  void SetupObs() {
    obs_.t = options_.telemetry;
    if (obs_.t == nullptr) return;
    obs::MetricsRegistry& m = obs_.t->metrics();
    obs_.m = &m;
    obs_.firings = m.Counter("eval.rule_firings");
    obs_.probes = m.Counter("eval.index_probes");
    obs_.rows = m.Counter("eval.rows_matched");
    obs_.rounds_counter = m.Counter("eval.rounds");
    obs_.round_growth_hist = m.Histogram(
        "eval.round.tuples_inserted",
        {0, 1, 10, 100, 1000, 10000, 100000, 1000000});
    obs_.round_seconds_hist = m.Histogram(
        "eval.round.seconds", {0.0001, 0.001, 0.01, 0.1, 1, 10});
    obs_.tuples_gauge = m.Gauge("storage.tuples");
    obs_.arena_bytes_gauge = m.Gauge("storage.arena_bytes");
    obs_.rehashes_gauge = m.Gauge("storage.rehashes");
    obs_.checkpoint_writes = m.Counter("eval.checkpoint.writes");
    obs_.checkpoint_bytes = m.Counter("eval.checkpoint.bytes");
    obs_.checkpoint_seconds_hist = m.Histogram(
        "eval.checkpoint.seconds", {0.0001, 0.001, 0.01, 0.1, 1, 10});
    obs_.pool_skipped_rounds = m.Counter("eval.pool.skipped_rounds");
    obs_.rep_bitset_relations_gauge =
        m.Gauge("storage.representation.bitset_relations");
    obs_.rep_words_scanned = m.Counter("storage.representation.words_scanned");
    obs_.rep_fallbacks = m.Counter("storage.representation.fallbacks");
    for (size_t k = 1; k <= static_cast<size_t>(BudgetKind::kCancelled);
         ++k) {
      obs_.trip_counters[k] = m.Counter(
          "eval.budget_trips",
          {{"kind",
            std::string(BudgetKindName(static_cast<BudgetKind>(k)))}});
    }
    const size_t n = rules_.size();
    obs_.rule_derived.resize(n);
    obs_.rule_duplicates.resize(n);
    obs_.rule_firings.resize(n);
    obs_.rule_probes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      obs_.rule_derived[i] = m.Counter("eval.rule.derived", LabelSetOf(i));
      obs_.rule_duplicates[i] =
          m.Counter("eval.rule.duplicates", LabelSetOf(i));
      obs_.rule_firings[i] = m.Counter("eval.rule.firings", LabelSetOf(i));
      obs_.rule_probes[i] = m.Counter("eval.rule.probes", LabelSetOf(i));
    }
    shards_.clear();
    const uint32_t nshards = std::max(1u, options_.num_threads) + 1;
    shards_.reserve(nshards);
    for (uint32_t i = 0; i < nshards; ++i) shards_.push_back(m.NewShard());
    serial_.shard = &shards_[0];
  }

  static obs::LabelSet LabelSetOf(size_t rule_index) {
    return {{"rule", std::to_string(rule_index)}};
  }

  /// Folds every participant shard into the registry. Owner thread only,
  /// at quiescent points (round boundaries / end of run).
  void MergeShards() {
    if (obs_.t == nullptr) return;
    for (obs::MetricsShard& shard : shards_) obs_.m->Merge(shard);
  }

  /// Writes this participant's variant counters into its private shard,
  /// on the participant's own thread — the worker-pool path exercises the
  /// shard-merge contract instead of funneling through the main thread.
  void RecordVariantShard(DescentState& ws) {
    if (ws.shard == nullptr) return;
    ws.shard->Add(obs_.firings, ws.stats.rule_firings);
    ws.shard->Add(obs_.probes, ws.stats.index_probes);
    ws.shard->Add(obs_.rows, ws.stats.rows_matched);
  }

  /// The structured error describing a trip, with progress attached.
  Status TripStatus(BudgetKind kind) const {
    std::string progress = " after " + std::to_string(stats_.rounds) +
                           " round(s), " +
                           std::to_string(stats_.tuples_inserted) +
                           " tuple(s) inserted";
    switch (kind) {
      case BudgetKind::kCancelled:
        return Status::Cancelled("evaluation cancelled" + progress);
      case BudgetKind::kDeadline:
        return Status::DeadlineExceeded(
            "deadline of " + std::to_string(options_.budget.deadline_ms) +
            " ms exceeded" + progress);
      case BudgetKind::kTuples:
        return Status::ResourceExhausted(
            "tuple budget of " + std::to_string(options_.budget.max_tuples) +
            " exceeded" + progress);
      case BudgetKind::kArenaBytes:
        return Status::ResourceExhausted(
            "arena byte budget of " +
            std::to_string(options_.budget.max_arena_bytes) + " exceeded" +
            progress);
      case BudgetKind::kRoundDerivations:
        return Status::ResourceExhausted(
            "per-round derivation budget of " +
            std::to_string(options_.budget.max_derivations_per_round) +
            " exceeded" + progress);
      case BudgetKind::kNone:
        break;
    }
    return Status::Ok();
  }

  struct CompiledRule {
    RulePlan plan;
    std::vector<size_t> idb_steps;  ///< Step indices over derived predicates.
    size_t rule_index = 0;
    /// Head has no registers (0-ary or all-constant): at most one tuple
    /// can ever be derived, so the first witness suffices (Section 3.1's
    /// cut) and the rule can retire once the tuple exists.
    bool single_tuple_head = false;
    /// Delta-first variant plans, keyed by the MAIN plan's step index that
    /// the variant designates as delta. Each is the same rule recompiled
    /// with that literal forced to step 0, so the semi-naive delta variant
    /// scans only the delta suffix and probes the other literals through
    /// indexes — O(delta) per round, not a full outer-relation scan. Steps
    /// already outermost in the main plan need no entry.
    std::vector<std::pair<size_t, RulePlan>> delta_plans;

    const RulePlan* DeltaPlan(size_t main_step) const {
      for (const auto& [s, p] : delta_plans) {
        if (s == main_step) return &p;
      }
      return nullptr;
    }
  };

  Status Compile() {
    // Head predicates, deduplicated — a handful, so a flat vector beats a
    // hash set on this per-evaluation path.
    std::vector<PredId> idb;
    idb.reserve(program_.rules().size());
    for (const Rule& r : program_.rules()) {
      if (std::find(idb.begin(), idb.end(), r.head.pred) == idb.end()) {
        idb.push_back(r.head.pred);
      }
    }
    rules_.reserve(program_.rules().size());
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      EXDL_ASSIGN_OR_RETURN(RulePlan plan,
                            CompileRule(program_.rules()[i], options_.plan));
      CompiledRule cr;
      cr.plan = std::move(plan);
      cr.rule_index = i;
      for (size_t s = 0; s < cr.plan.steps.size(); ++s) {
        if (std::find(idb.begin(), idb.end(), cr.plan.steps[s].pred) !=
            idb.end()) {
          cr.idb_steps.push_back(s);
        }
      }
      cr.single_tuple_head = true;
      for (const ArgSpec& a : cr.plan.head_args) {
        if (a.kind == ArgSpec::Kind::kReg) cr.single_tuple_head = false;
      }
      // A rule the bitset path cannot take (ineligible plan shape, or
      // provenance forcing the generic descent) is a fallback when this
      // run asked for bitset kernels.
      if (UseBitsetKernels(options_.representation) &&
          (!cr.plan.bitset_eligible || options_.record_provenance)) {
        ++rep_stats_.fallbacks;
      }
      // Delta-first variants for every step that can carry a delta in
      // semi-naive rounds: IDB literals plus (on IVM re-entry) literals
      // over extra-delta predicates. A step already outermost keeps the
      // main plan. Compile failure just means no variant (the main plan
      // is always a sound fallback), but forcing a positive literal first
      // cannot make an orderable rule unorderable.
      if (options_.seminaive) {
        for (size_t s = 0; s < cr.plan.steps.size(); ++s) {
          const LiteralStep& step = cr.plan.steps[s];
          if (s == 0 || step.negated) continue;
          const bool idb_step =
              std::find(cr.idb_steps.begin(), cr.idb_steps.end(), s) !=
              cr.idb_steps.end();
          const bool extra_step =
              std::find(options_.extra_delta_preds.begin(),
                        options_.extra_delta_preds.end(),
                        step.pred) != options_.extra_delta_preds.end();
          if (!idb_step && !extra_step) continue;
          PlanOptions delta_opts = options_.plan;
          delta_opts.first_body_position = step.body_position;
          Result<RulePlan> delta_plan =
              CompileRule(program_.rules()[i], delta_opts);
          if (delta_plan.ok()) {
            cr.delta_plans.emplace_back(s, std::move(*delta_plan));
          }
        }
      }
      rules_.push_back(std::move(cr));
    }
    return Status::Ok();
  }

  /// Resolves the pool-skip threshold: an explicit option wins, then
  /// EXDL_POOL_MIN_DELTA_ROWS, then the built-in default. Small semi-naive
  /// rounds cost more to dispatch to the pool than to run inline — 4096
  /// delta rows is comfortably past the crossover on the E1 chain
  /// workloads (see EXPERIMENTS.md E1: T4 was slower than serial before
  /// this gate).
  uint32_t ResolvePoolMinDeltaRows() const {
    if (options_.pool_min_delta_rows != 0) {
      return options_.pool_min_delta_rows;
    }
    // Read (and parse) the environment once per process: getenv scans
    // environ linearly and this sits in the timed evaluation window of
    // every Run. Processes honor the variable at startup, like the other
    // EXDL_* knobs.
    static const uint32_t env_value = [] {
      const char* v = std::getenv("EXDL_POOL_MIN_DELTA_ROWS");
      if (v != nullptr && *v != '\0') {
        const uint64_t parsed = std::strtoull(v, nullptr, 10);
        if (parsed != 0) {
          return static_cast<uint32_t>(
              std::min<uint64_t>(parsed, UINT32_MAX));
        }
      }
      return kDefaultPoolMinDeltaRows;
    }();
    return env_value;
  }

  /// How many workers a variant should use: 1 (serial) unless threading is
  /// on, provenance is off, the variant has a partitionable positive
  /// outermost step, and the outer range is big enough to amortize the
  /// spawn. Single-tuple heads stay serial (they stop at one witness).
  uint32_t NumWorkers(const RulePlan& plan,
                      const std::vector<RowRange>& ranges) const {
    if (options_.num_threads <= 1 || options_.record_provenance) return 1;
    if (stop_after_first_) return 1;
    if (plan.steps.empty() || plan.steps[0].negated) return 1;
    const uint32_t rows = ranges[0].hi - ranges[0].lo;
    return std::min(options_.num_threads,
                    std::max(1u, rows / kMinRowsPerWorker));
  }

  /// Fires one rule variant. `delta_step` designates the step reading only
  /// [delta_lo, start) of its relation (kNoDelta = none; all steps read
  /// [0, start)). Derivations land in per-worker buffers and are appended
  /// to round_buffer_ in deterministic (partition) order.
  void FireVariant(const CompiledRule& cr, size_t delta_step,
                   const SizeMap& start, const SizeMap& delta_lo) {
    if (Tripped()) return;  // budget already blown; finish the round fast
    if (!injected_.ok()) return;  // fault pending; finish the round fast
    // Delta variants run the delta-first plan when one was compiled: the
    // delta literal is its step 0, so the outer scan covers only the
    // suffix [delta_lo, start) and every other literal is an index probe.
    // The match set is identical either way (loop order does not change
    // the join), so answers are unchanged; per-variant derivation order
    // and scan counters follow the plan actually run.
    const RulePlan* chosen = &cr.plan;
    if (delta_step != kNoDelta) {
      if (const RulePlan* dp = cr.DeltaPlan(delta_step)) {
        chosen = dp;
        delta_step = 0;
      }
    }
    const RulePlan& plan = *chosen;
    // Existence short-circuit (Section 3.1): a single-tuple head needs one
    // witness ever; skip entirely once the tuple exists.
    stop_after_first_ = options_.boolean_cut && cr.single_tuple_head;
    if (stop_after_first_) {
      const Relation* rel = db_->Find(plan.head_pred);
      if (rel != nullptr &&
          rel->ContainsKey(ConstArgsKey{&plan.head_args})) {
        return;
      }
    }
    std::vector<RowRange>& ranges = ranges_scratch_;  // reused per variant
    ranges.assign(plan.steps.size(), RowRange{0, 0});
    for (size_t s = 0; s < plan.steps.size(); ++s) {
      PredId p = plan.steps[s].pred;
      auto it = start.find(p);
      uint32_t hi = it == start.end() ? 0 : it->second;
      uint32_t lo = 0;
      if (s == delta_step) {
        auto dit = delta_lo.find(p);
        lo = dit == delta_lo.end() ? 0 : dit->second;
      }
      ranges[s] = RowRange{lo, hi};
      // An empty range over a positive literal means the variant cannot
      // match; an empty (or absent) relation under a negated literal is
      // simply a succeeding anti-join.
      if (ranges[s].empty() && !plan.steps[s].negated) return;
    }
    current_rule_index_ = cr.rule_index;
    SpanGuard rule_span(obs_.t,
                        obs_.t != nullptr
                            ? "rule:" + std::to_string(cr.rule_index)
                            : std::string());

    // Resolve each step's relation and (lazily built) index once per
    // variant: the inner descent loop then probes through cached pointers
    // with no map lookup or lock. Relations cloned copy-on-write from a
    // shared snapshot stay payload-shared — the const GetIndex builds (or
    // reuses) the shared index in place, so concurrent sessions over the
    // same EDB pay for an index build once.
    //
    // Unary membership steps (step.bitset_eligible) never resolve a hash
    // index: in every representation they probe the relation's word-packed
    // bitset instead — full bits when the step reads the whole relation,
    // a scratch bitset built from the arena rows [lo, hi) when it reads a
    // semi-naive delta. This keeps index builds (and the storage.rehashes
    // gauge) identical across representations.
    step_rels_.assign(plan.steps.size(), nullptr);
    step_indexes_.assign(plan.steps.size(), nullptr);
    step_bits_.assign(plan.steps.size(), nullptr);
    for (size_t s = 0; s < plan.steps.size(); ++s) {
      const LiteralStep& step = plan.steps[s];
      const Relation* rel = db_->Find(step.pred);
      step_rels_[s] = rel;
      if (rel == nullptr || step.negated || step.index_columns.empty()) {
        continue;
      }
      // Provenance needs row ids, which a membership bit cannot supply;
      // explain runs resolve the hash index like any other step (in every
      // representation, so the comparison stays apples-to-apples).
      if (step.bitset_eligible && !options_.record_provenance &&
          rel->arity() == 1) {
        const Relation::View v = rel->view();
        if (ranges[s].lo == 0 && ranges[s].hi == v.size()) {
          step_bits_[s] = v.bits();
        } else {
          // Delta reads cover the arena suffix [lo, hi); at most one step
          // per variant is the delta step, so one scratch bitset suffices.
          delta_bits_scratch_.Clear();
          std::span<const Value> arena = v.Raw();
          for (uint32_t r = ranges[s].lo; r < ranges[s].hi; ++r) {
            delta_bits_scratch_.Set(arena[r]);
          }
          step_bits_[s] = &delta_bits_scratch_;
        }
      } else {
        step_indexes_[s] = &rel->GetIndex(step.index_columns);
      }
    }

    // Pool-skip gate: a semi-naive round whose delta is tiny costs more to
    // dispatch than to run inline (see EvalOptions::pool_min_delta_rows).
    uint32_t workers = NumWorkers(plan, ranges);
    if (workers > 1 && delta_step != kNoDelta) {
      const uint32_t delta_rows =
          ranges[delta_step].hi - ranges[delta_step].lo;
      if (delta_rows < pool_min_delta_rows_) {
        workers = 1;
        pool_skipped_this_round_ = true;
      }
    }
    bool kernel =
        use_bitset_ && plan.bitset_eligible && !stop_after_first_;
    if (kernel && !PrepareBitsetVariant(plan, ranges)) kernel = false;
    if (workers <= 1) {
      serial_.regs.assign(plan.num_regs, 0);
      if (kernel) {
        RunBitsetPartition(plan, ranges, serial_);
      } else {
        serial_.reg_set.assign(plan.num_regs, false);
        serial_.path.clear();
        Descend(plan, ranges, 0, serial_);
      }
      RecordVariantShard(serial_);
      Drain(serial_);
      return;
    }

    // Partition the outermost row range into contiguous chunks, one per
    // worker. Chunk order == serial scan order, so appending the worker
    // buffers in chunk order reproduces the serial derivation sequence.
    const uint32_t lo = ranges[0].lo;
    const uint32_t total = ranges[0].hi - lo;
    if (worker_states_.size() < workers) worker_states_.resize(workers);
    if (obs_.t != nullptr) {
      // shards_[0] is the serial/main participant; worker w owns w + 1.
      for (uint32_t w = 0; w < workers; ++w) {
        worker_states_[w].shard = &shards_[w + 1];
      }
    }
    // Fault site: worker-pool dispatch. Fails the variant before any part
    // runs, so no worker buffer is left half-filled.
    if (FaultPlan::Global().armed() &&
        FaultPlan::Global().ShouldFail("eval.pool_dispatch")) {
      injected_ = Status::Internal("injected fault at eval.pool_dispatch");
      return;
    }
    if (pool_ == nullptr) {
      // Never oversubscribe: pool threads beyond the CPUs actually
      // available to this process only add contention. The partition
      // count (and therefore every result and counter) still follows
      // num_threads; with zero extra threads the caller simply claims
      // all partitions itself, in order.
      const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
      pool_ = std::make_unique<WorkerPool>(
          std::min(options_.num_threads, hw) - 1);
    }
    pool_->Run(workers, [this, &plan, &ranges, lo, total, workers,
                         kernel](uint32_t w) {
      DescentState& ws = worker_states_[w];
      ws.regs.assign(plan.num_regs, 0);
      ws.reg_set.assign(plan.num_regs, false);
      std::vector<RowRange> my_ranges = ranges;
      my_ranges[0] = RowRange{lo + w * total / workers,
                              lo + (w + 1) * total / workers};
      if (my_ranges[0].empty()) return;
      if (kernel) {
        RunBitsetPartition(plan, my_ranges, ws);
      } else {
        Descend(plan, my_ranges, 0, ws);
      }
      RecordVariantShard(ws);
    });
    for (uint32_t w = 0; w < workers; ++w) Drain(worker_states_[w]);
  }

  /// Builds the pre-/post- unary-probe descriptors of a bitset-eligible
  /// variant, split around the binary probe step when there is one (no
  /// binary probe: everything lands in pre_probes_). Returns false when a
  /// probe's backing bitset is unavailable — provenance resolved indexes
  /// instead, or a defensive arity mismatch — and the variant must take
  /// the generic descent.
  bool PrepareBitsetVariant(const RulePlan& plan,
                            const std::vector<RowRange>& ranges) {
    pre_probes_.clear();
    post_probes_.clear();
    for (size_t s = 1; s < plan.steps.size(); ++s) {
      if (s == plan.binary_probe_step) continue;
      const LiteralStep& step = plan.steps[s];
      BitProbe p;
      p.negated = step.negated;
      const ArgSpec& a = step.args[0];
      if (a.kind == ArgSpec::Kind::kConst) {
        p.const_key = true;
        p.key_const = a.const_value;
      } else {
        p.key_reg = a.reg;
      }
      if (step.negated) {
        // Anti-joins test the full relation (lower stratum: no longer
        // growing); absent/empty relations pass vacuously with no probe,
        // exactly like the generic anti-join branch.
        const Relation* rel = step_rels_[s];
        p.active = rel != nullptr && ranges[s].hi > 0;
        if (p.active) {
          p.bits = rel->view().bits();
          if (p.bits == nullptr) return false;
        }
      } else {
        p.bits = step_bits_[s];
        if (p.bits == nullptr) return false;
      }
      (s < plan.binary_probe_step ? pre_probes_ : post_probes_).push_back(p);
    }
    return true;
  }

  /// Buffers one head derivation from the current register file — the
  /// kernels' equivalent of Descend's emission base case (no provenance:
  /// kernels never run on explain evaluations). Returns false when the
  /// per-round derivation budget tripped and the partition must stop.
  bool EmitHead(const RulePlan& plan, DescentState& ws) {
    if (options_.budget.max_derivations_per_round != 0 &&
        round_derivations_.fetch_add(1, std::memory_order_relaxed) >=
            options_.budget.max_derivations_per_round) {
      Trip(BudgetKind::kRoundDerivations);
      return false;
    }
    for (const ArgSpec& a : plan.head_args) {
      ws.values.push_back(a.kind == ArgSpec::Kind::kConst ? a.const_value
                                                          : ws.regs[a.reg]);
    }
    if (ws.open_run != static_cast<size_t>(-1)) {
      // Every kernel emission in this partition shares pred/len/rule and
      // the tuples are contiguous in ws.values: extend the open run.
      ++ws.buffer[ws.open_run].count;
    } else {
      PendingFact fact;
      fact.pred = plan.head_pred;
      fact.begin = ws.values.size() - plan.head_args.size();
      fact.len = static_cast<uint32_t>(plan.head_args.size());
      fact.rule = static_cast<uint32_t>(current_rule_index_);
      ws.open_run = ws.buffer.size();
      ws.buffer.push_back(std::move(fact));
    }
    ++ws.stats.rule_firings;
    return true;
  }

  /// Executes one outer-range partition of a bitset-eligible variant
  /// (ranges[0] is this participant's slice). Shape A — unary outer scan,
  /// no binary probe — runs word-wise mask kernels and replays the arena
  /// for emission; Shape B — binary outer scan and/or one binary index
  /// probe — runs a tight per-row loop over the pre-resolved bit probes.
  /// Both reproduce the generic descent's derivation sequence and counters
  /// exactly (DESIGN.md §14).
  void RunBitsetPartition(const RulePlan& plan,
                          const std::vector<RowRange>& ranges,
                          DescentState& ws) {
    ws.open_run = static_cast<size_t>(-1);
    const Relation::View outer = step_rels_[0]->view();
    if (outer.arity() == 1 &&
        plan.binary_probe_step == static_cast<size_t>(-1)) {
      RunShapeA(plan, ranges[0], outer, ws);
    } else {
      RunShapeB(plan, ranges, outer, ws);
    }
  }

  /// Shape A: every surviving binding is a distinct symbol id (the outer
  /// relation deduplicates), so the whole partition is one bit mask.
  /// Each unary probe is a word-wise AND / ANDNOT over the mask; counters
  /// are reconstructed from popcounts (a probe per surviving row, a match
  /// per survivor after a positive probe — exactly the generic per-row
  /// counts). Emission replays the arena slice in row order against the
  /// final mask, so the derivation sequence is the generic one.
  void RunShapeA(const RulePlan& plan, RowRange outer,
                 const Relation::View& view, DescentState& ws) {
    std::span<const Value> arena = view.Raw();
    std::vector<uint64_t>& mask = ws.mask;
    size_t words = 0;
    if (outer.lo == 0 && outer.hi == view.size()) {
      const UnaryBitset* bits = view.bits();
      words = bits->num_words();
      mask.assign(bits->words(), bits->words() + words);
    } else {
      mask.clear();
      for (uint32_t r = outer.lo; r < outer.hi; ++r) {
        const Value v = arena[r];
        const size_t w = v / UnaryBitset::kWordBits;
        if (w >= words) {
          words = w + 1;
          mask.resize(words, 0);
        }
        mask[w] |= uint64_t{1} << (v % UnaryBitset::kWordBits);
      }
    }
    ws.words_scanned += words;
    uint64_t survivors = outer.hi - outer.lo;
    ws.stats.rows_matched += survivors;

    for (const BitProbe& p : pre_probes_) {
      if (survivors == 0) break;
      if (p.negated && !p.active) continue;  // vacuous pass, no probe
      ws.stats.index_probes += survivors;
      if (p.const_key) {
        ++ws.words_scanned;
        const bool hit = p.bits->Test(p.key_const);
        if (p.negated == hit) {  // positive miss / negated hit: all fail
          survivors = 0;
          break;
        }
        if (!p.negated) ws.stats.rows_matched += survivors;
        continue;  // mask unchanged
      }
      const uint64_t* pb = p.bits->words();
      const size_t pw = p.bits->num_words();
      uint64_t count = 0;
      for (size_t w = 0; w < words; ++w) {
        const uint64_t probe_word = w < pw ? pb[w] : 0;
        mask[w] &= p.negated ? ~probe_word : probe_word;
        count += std::popcount(mask[w]);
      }
      ws.words_scanned += words;
      if (!p.negated) ws.stats.rows_matched += count;
      survivors = count;
    }
    if (survivors == 0) return;

    const uint32_t reg0 = plan.steps[0].args[0].reg;
    for (uint32_t r = outer.lo; r < outer.hi; ++r) {
      const Value v = arena[r];
      const size_t w = v / UnaryBitset::kWordBits;
      if (w >= words ||
          ((mask[w] >> (v % UnaryBitset::kWordBits)) & 1) == 0) {
        continue;
      }
      if (governed_ && ++ws.rows_since_check >= kBudgetCheckStride) {
        ws.rows_since_check = 0;
        if (CheckMidRound()) return;
      }
      ws.regs[reg0] = v;
      if (!EmitHead(plan, ws)) return;
    }
  }

  /// Shape B: per outer row, bind the scan registers straight off the
  /// arena, run the pre-probes as single-bit tests, enumerate the one
  /// binary index probe (if any) in row-id order binding its fresh
  /// register, run the post-probes, emit. One probe / one match count per
  /// generic-descent event, in the generic order.
  void RunShapeB(const RulePlan& plan, const std::vector<RowRange>& ranges,
                 const Relation::View& view, DescentState& ws) {
    const RowRange outer = ranges[0];
    std::span<const Value> arena = view.Raw();
    const uint32_t arity = view.arity();
    const LiteralStep& outer_step = plan.steps[0];
    const size_t bp = plan.binary_probe_step;
    const LiteralStep* bstep =
        bp == static_cast<size_t>(-1) ? nullptr : &plan.steps[bp];
    const Relation::Index* bindex = nullptr;
    std::span<const Value> barena;
    RowRange brange{0, 0};
    uint32_t bfree_pos = 0;
    uint32_t bfree_reg = 0;
    if (bstep != nullptr) {
      bindex = step_indexes_[bp];
      barena = step_rels_[bp]->view().Raw();
      brange = ranges[bp];
      bfree_pos = bstep->index_columns[0] == 0 ? 1 : 0;
      bfree_reg = bstep->args[bfree_pos].reg;
    }
    auto run_probes = [&](const std::vector<BitProbe>& probes) -> bool {
      for (const BitProbe& p : probes) {
        if (p.negated && !p.active) continue;
        ++ws.stats.index_probes;
        ++ws.words_scanned;
        const Value key = p.const_key ? p.key_const : ws.regs[p.key_reg];
        const bool hit = p.bits->Test(key);
        if (p.negated == hit) return false;
        if (!p.negated) ++ws.stats.rows_matched;
      }
      return true;
    };
    for (uint32_t r = outer.lo; r < outer.hi; ++r) {
      if (governed_ && ++ws.rows_since_check >= kBudgetCheckStride) {
        ws.rows_since_check = 0;
        if (CheckMidRound()) return;
      }
      ++ws.stats.rows_matched;
      const Value* row = arena.data() + static_cast<size_t>(r) * arity;
      for (size_t i = 0; i < outer_step.args.size(); ++i) {
        ws.regs[outer_step.args[i].reg] = row[i];
      }
      if (!run_probes(pre_probes_)) continue;
      if (bstep == nullptr) {
        if (!EmitHead(plan, ws)) return;
        continue;
      }
      ++ws.stats.index_probes;
      const Relation::RowIdList* ids =
          bindex->LookupKey(RegKey{bstep, ws.regs.data()});
      if (ids == nullptr) continue;
      auto lo_it = std::lower_bound(ids->begin(), ids->end(), brange.lo);
      for (auto it = lo_it; it != ids->end() && *it < brange.hi; ++it) {
        ++ws.stats.rows_matched;
        ws.regs[bfree_reg] =
            barena[static_cast<size_t>(*it) * 2 + bfree_pos];
        if (!run_probes(post_probes_)) continue;
        if (!EmitHead(plan, ws)) return;
      }
    }
  }

  /// Folds one worker's stats into the engine's and appends its buffered
  /// derivations to the round buffer. Called in variant/partition order so
  /// the flushed insertion order matches serial evaluation.
  void Drain(DescentState& ws) {
    if (obs_.t != nullptr) {
      // Per-rule attribution happens here — per variant, on the main
      // thread, before the stats fold/reset — so the descent inner loop
      // carries no instrumentation.
      obs_.m->Add(obs_.rule_firings[current_rule_index_],
                  ws.stats.rule_firings);
      obs_.m->Add(obs_.rule_probes[current_rule_index_],
                  ws.stats.index_probes);
    }
    stats_ += ws.stats;
    ws.stats = EvalStats();
    rep_stats_.words_scanned += ws.words_scanned;
    ws.words_scanned = 0;
    const size_t base = round_values_.size();
    round_values_.insert(round_values_.end(), ws.values.begin(),
                         ws.values.end());
    for (PendingFact& f : ws.buffer) {
      f.begin += base;
      round_buffer_.push_back(std::move(f));
    }
    ws.values.clear();
    ws.buffer.clear();
    ws.open_run = static_cast<size_t>(-1);
  }

  /// Returns false when evaluation of this variant should stop (the
  /// single-tuple head was emitted and one witness suffices). `ws` is this
  /// worker's private state; when serial it aliases serial_, whose stats
  /// and buffer are folded into the engine-wide ones by Flush.
  bool Descend(const RulePlan& plan, const std::vector<RowRange>& ranges,
               size_t step_idx, DescentState& ws) {
    if (step_idx == plan.steps.size()) {
      if (options_.budget.max_derivations_per_round != 0 &&
          round_derivations_.fetch_add(1, std::memory_order_relaxed) >=
              options_.budget.max_derivations_per_round) {
        Trip(BudgetKind::kRoundDerivations);
        return false;
      }
      PendingFact fact;
      fact.pred = plan.head_pred;
      fact.begin = ws.values.size();
      fact.len = static_cast<uint32_t>(plan.head_args.size());
      fact.rule = static_cast<uint32_t>(current_rule_index_);
      for (const ArgSpec& a : plan.head_args) {
        ws.values.push_back(a.kind == ArgSpec::Kind::kConst ? a.const_value
                                                            : ws.regs[a.reg]);
      }
      if (options_.record_provenance) {
        fact.prov.rule_index = static_cast<int>(current_rule_index_);
        fact.prov.children = ws.path;
      }
      ws.buffer.push_back(std::move(fact));
      ++ws.stats.rule_firings;
      return !stop_after_first_;
    }
    const LiteralStep& step = plan.steps[step_idx];
    const Relation* rel = step_rels_[step_idx];
    const RowRange& range = ranges[step_idx];

    if (step.negated) {
      // Anti-join: succeed iff no tuple matches the (fully bound) key.
      // index_columns covers every position for negated steps, so RegKey
      // is the whole tuple — membership is tested straight off the
      // registers, no key vector.
      bool exists = false;
      if (rel != nullptr && range.hi > 0) {
        if (step.args.empty()) {
          exists = true;  // 0-ary relation holds the empty tuple
        } else {
          ++ws.stats.index_probes;
          exists = rel->ContainsKey(RegKey{&step, ws.regs.data()});
        }
      }
      if (exists) return true;  // this binding fails; keep enumerating
      return Descend(plan, ranges, step_idx + 1, ws);
    }
    if (rel == nullptr) return true;

    // Unary membership probe: a bound single argument against an arity-1
    // relation tests one bit (of the full bitset, or the delta bitset
    // FireVariant built for the delta step) instead of a hash-index
    // lookup. The counter shape matches the index path exactly: one probe
    // per binding reaching the step, one matched row per hit (arity-1
    // dedup means an index group holds at most one row).
    if (step_bits_[step_idx] != nullptr) {
      ++ws.stats.index_probes;
      const ArgSpec& a = step.args[0];
      const Value key =
          a.kind == ArgSpec::Kind::kConst ? a.const_value : ws.regs[a.reg];
      if (!step_bits_[step_idx]->Test(key)) return true;
      if (governed_ && ++ws.rows_since_check >= kBudgetCheckStride) {
        ws.rows_since_check = 0;
        if (CheckMidRound()) return false;
      }
      ++ws.stats.rows_matched;
      return Descend(plan, ranges, step_idx + 1, ws);
    }

    const Relation::View rv = rel->view();
    auto process_row = [&](uint32_t row_id) -> bool {
      if (governed_ && ++ws.rows_since_check >= kBudgetCheckStride) {
        ws.rows_since_check = 0;
        if (CheckMidRound()) return false;
      }
      std::span<const Value> row = rv.Scan(row_id);
      ++ws.stats.rows_matched;
      // Bind/check arguments; remember which registers this row bound so we
      // can release them before the next row.
      size_t bound_here = 0;
      bool ok = true;
      for (size_t i = 0; i < step.args.size() && ok; ++i) {
        const ArgSpec& a = step.args[i];
        if (a.kind == ArgSpec::Kind::kConst) {
          ok = row[i] == a.const_value;
        } else if (ws.reg_set[a.reg]) {
          ok = row[i] == ws.regs[a.reg];
        } else {
          ws.regs[a.reg] = row[i];
          ws.reg_set[a.reg] = true;
          ++bound_here;
        }
      }
      bool keep_going = true;
      if (ok) {
        if (options_.record_provenance) {
          ws.path.push_back(TupleRef{step.pred, row_id});
        }
        keep_going = Descend(plan, ranges, step_idx + 1, ws);
        if (options_.record_provenance) ws.path.pop_back();
      }
      // Unbind: the registers bound by this row are among step.binds
      // (first occurrences); when !ok we may have bound a prefix only, so
      // clear precisely what we set.
      if (bound_here > 0) {
        for (size_t i = 0; i < step.args.size() && bound_here > 0; ++i) {
          const ArgSpec& a = step.args[i];
          if (a.kind == ArgSpec::Kind::kReg && ws.reg_set[a.reg]) {
            for (uint32_t b : step.binds) {
              if (b == a.reg) {
                ws.reg_set[a.reg] = false;
                --bound_here;
                break;
              }
            }
          }
        }
      }
      return keep_going;
    };

    if (step.index_columns.empty()) {
      for (uint32_t row_id = range.lo; row_id < range.hi; ++row_id) {
        if (!process_row(row_id)) return false;
      }
      return true;
    }
    const Relation::Index& index = *step_indexes_[step_idx];
    ++ws.stats.index_probes;
    const Relation::RowIdList* ids =
        index.LookupKey(RegKey{&step, ws.regs.data()});
    if (ids == nullptr) return true;
    // Row ids are appended in increasing order; binary-search the range.
    auto lo_it = std::lower_bound(ids->begin(), ids->end(), range.lo);
    for (auto it = lo_it; it != ids->end() && *it < range.hi; ++it) {
      if (!process_row(*it)) return false;
    }
    return true;
  }

  void Flush() {
    for (PendingFact& f : round_buffer_) {
      // Each entry is a run of f.count tuples (stride f.len) from one
      // rule into one relation; the generic descent buffers runs of 1,
      // kernels one run per partition. Resolve the relation and fold the
      // per-rule telemetry once per run, insert per tuple.
      Relation& rel = db_->GetOrCreate(f.pred, f.len);
      const Value* base = round_values_.data() + f.begin;
      const bool unary = f.len == 1;
      // Pre-size the arena for kernel runs. Unary only: Reserve on wider
      // relations also pre-sizes the dedup table, which would make the
      // storage.rehashes gauge depend on the representation.
      if (unary && f.count > 1) rel.Reserve(rel.size() + f.count);
      uint64_t inserted = 0;
      for (uint32_t i = 0; i < f.count; ++i) {
        const Value* row = base + static_cast<size_t>(i) * f.len;
        const bool was_new =
            unary ? rel.InsertUnary(*row)
                  : rel.Insert(std::span<const Value>(row, f.len));
        if (was_new) {
          ++inserted;
          if (options_.record_provenance) {
            uint32_t row_id = static_cast<uint32_t>(rel.size() - 1);
            provenance_.emplace(TupleRef{f.pred, row_id}, std::move(f.prov));
          }
        }
        if (options_.support_sink != nullptr) {
          options_.support_sink->Derived(
              f.pred, std::span<const Value>(row, f.len), was_new);
        }
      }
      if (inserted > 0) {
        stats_.tuples_inserted += inserted;
        sizes_[f.pred] = static_cast<uint32_t>(rel.size());
        total_tuples_ += inserted;
        arena_bytes_ += inserted * f.len * sizeof(Value);
      }
      stats_.duplicate_inserts += f.count - inserted;
      if (obs_.t != nullptr) {
        if (inserted > 0) obs_.m->Add(obs_.rule_derived[f.rule], inserted);
        if (f.count > inserted) {
          obs_.m->Add(obs_.rule_duplicates[f.rule], f.count - inserted);
        }
      }
    }
    round_buffer_.clear();
    round_values_.clear();
  }

  /// Retires rules whose single possible head tuple (0-ary or
  /// all-constant heads) has been derived (Section 3.1's runtime cut).
  void ApplyBooleanCut() {
    if (!options_.boolean_cut) return;
    for (const CompiledRule& cr : rules_) {
      if (retired_.count(cr.rule_index) > 0) continue;
      if (!cr.single_tuple_head) continue;
      const Relation* rel = db_->Find(cr.plan.head_pred);
      if (rel != nullptr &&
          rel->ContainsKey(ConstArgsKey{&cr.plan.head_args})) {
        retired_.insert(cr.rule_index);
        ++stats_.rules_retired;
      }
    }
  }

  bool GroundQueryIn() const {
    const Atom& q = *program_.query();
    const Relation* rel = db_->Find(q.pred);
    if (rel == nullptr) return false;
    std::vector<Value> row;
    row.reserve(q.args.size());
    for (const Term& t : q.args) row.push_back(t.id());
    return rel->Contains(row);
  }

  bool ShouldStopOnGroundQuery() const {
    if (!options_.stop_on_ground_query) return false;
    if (!program_.query() || !program_.query()->IsGround()) return false;
    return GroundQueryIn();
  }

  const Program& program_;
  const EvalOptions& options_;
  Database* db_ = nullptr;
  std::vector<CompiledRule> rules_;
  std::unordered_set<size_t> retired_;
  EvalStats stats_;
  SizeMap sizes_;  ///< Relation sizes, kept current by Flush.
  /// Budget state. total_tuples_/arena_bytes_ mirror the database and are
  /// maintained by Flush; trip_ holds the first BudgetKind that fired
  /// (0 = none) and is shared with the pool workers; round_derivations_
  /// counts head tuples buffered in the current round (used only when
  /// max_derivations_per_round is set).
  bool governed_ = false;
  Clock::time_point eval_begin_;
  Clock::time_point deadline_;
  /// Wall-clock already spent by the checkpointed run being resumed
  /// (0 for a fresh evaluation); folded into eval_seconds and the
  /// deadline budget.
  double resumed_seconds_ = 0;
  /// First injected-fault error of this evaluation; non-OK aborts the run
  /// as a hard error right after the current round is discarded.
  Status injected_;
  uint64_t total_tuples_ = 0;
  uint64_t arena_bytes_ = 0;
  std::atomic<uint32_t> trip_{0};
  std::atomic<uint64_t> round_derivations_{0};
  DescentState serial_;
  /// Pool + per-worker states, created on first parallel variant and
  /// reused across rounds (thread spawns would dominate small rounds).
  std::unique_ptr<WorkerPool> pool_;
  std::vector<DescentState> worker_states_;
  std::vector<PendingFact> round_buffer_;
  std::vector<Value> round_values_;  ///< Arena backing round_buffer_.
  /// Per-variant caches: each body step's relation and resolved index,
  /// filled by FireVariant before descending (shared read-only with the
  /// pool workers for the variant's duration).
  std::vector<const Relation*> step_rels_;
  std::vector<const Relation::Index*> step_indexes_;
  std::vector<RowRange> ranges_scratch_;  ///< FireVariant's step ranges.
  /// Per-variant: the bitset each unary membership step probes (nullptr
  /// for every other step). Full relation bits, or delta_bits_scratch_
  /// when the step reads a semi-naive delta suffix.
  std::vector<const UnaryBitset*> step_bits_;
  UnaryBitset delta_bits_scratch_;
  /// Per-variant bitset-kernel probe descriptors, split around the binary
  /// probe step (read-only to the pool workers for the variant's
  /// duration, like the caches above).
  std::vector<BitProbe> pre_probes_;
  std::vector<BitProbe> post_probes_;
  /// Run the batched bitset kernels for eligible rules this evaluation
  /// (representation != tuple and no provenance)?
  bool use_bitset_ = false;
  RepresentationStats rep_stats_;
  /// Resolved pool-skip threshold (ResolvePoolMinDeltaRows) and the
  /// per-round "gate fired" flag FinishRound turns into the
  /// eval.pool.skipped_rounds metric.
  uint32_t pool_min_delta_rows_ = 0;
  bool pool_skipped_this_round_ = false;
  bool stop_after_first_ = false;
  size_t current_rule_index_ = 0;
  std::unordered_map<TupleRef, Provenance, TupleRefHash> provenance_;

  /// Telemetry sink pointers and pre-registered metric ids (t == null
  /// means telemetry is off and every site is a never-taken branch).
  struct ObsState {
    obs::Telemetry* t = nullptr;
    obs::MetricsRegistry* m = nullptr;
    obs::MetricId firings = 0;
    obs::MetricId probes = 0;
    obs::MetricId rows = 0;
    obs::MetricId rounds_counter = 0;
    obs::MetricId round_growth_hist = 0;
    obs::MetricId round_seconds_hist = 0;
    obs::MetricId tuples_gauge = 0;
    obs::MetricId arena_bytes_gauge = 0;
    obs::MetricId rehashes_gauge = 0;
    obs::MetricId checkpoint_writes = 0;
    obs::MetricId checkpoint_bytes = 0;
    obs::MetricId checkpoint_seconds_hist = 0;
    obs::MetricId pool_skipped_rounds = 0;
    obs::MetricId rep_bitset_relations_gauge = 0;
    obs::MetricId rep_words_scanned = 0;
    obs::MetricId rep_fallbacks = 0;
    /// Indexed by rule index (== CompiledRule::rule_index).
    std::vector<obs::MetricId> rule_derived;
    std::vector<obs::MetricId> rule_duplicates;
    std::vector<obs::MetricId> rule_firings;
    std::vector<obs::MetricId> rule_probes;
    /// Indexed by BudgetKind value; [0] (kNone) unused.
    obs::MetricId trip_counters[6] = {};
  };
  ObsState obs_;
  /// Per-participant metric shards: [0] = serial/main, [w + 1] = pool
  /// worker w. Sized once in SetupObs, so the pointers handed to the
  /// DescentStates stay stable.
  std::vector<obs::MetricsShard> shards_;
};

}  // namespace

Result<EvalResult> Evaluate(const Program& program, const Database& input,
                            const EvalOptions& options) {
  Engine engine(program, options);
  return engine.Run(input);
}

Result<EvalResult> Evaluate(const Program& program, Database&& input,
                            const EvalOptions& options) {
  Engine engine(program, options);
  return engine.RunOwned(std::move(input));
}

std::vector<std::vector<Value>> ExtractAnswers(const Atom& query,
                                               const Database& db,
                                               size_t first_row) {
  std::vector<std::vector<Value>> out;
  const Relation* rel = db.Find(query.pred);
  if (rel == nullptr || first_row >= rel->size()) return out;
  // Distinct variables in first-occurrence order are the answer columns.
  std::vector<SymbolId> vars;
  query.CollectVars(&vars);
  std::unordered_map<SymbolId, size_t> var_col;
  for (size_t i = 0; i < vars.size(); ++i) var_col[vars[i]] = i;

  const Relation::View view = rel->view();

  // Identity projection: every argument a distinct variable means each
  // stored row IS an answer, already distinct (the relation deduplicates).
  // Copy and sort — no per-row hash-set membership. This is the common
  // query shape and most of ExtractAnswers' cost on large answer sets.
  if (vars.size() == query.args.size() &&
      query.args.size() == rel->arity()) {
    if (rel->arity() == 1) {
      // Monadic: sort the flat value column, then materialize — the sort
      // compares machine words instead of heap-backed vectors.
      std::span<const Value> raw = view.Raw().subspan(first_row);
      std::vector<Value> flat(raw.begin(), raw.end());
      std::sort(flat.begin(), flat.end());
      out.reserve(flat.size());
      for (Value v : flat) out.emplace_back(1, v);
      return out;
    }
    out.reserve(rel->size() - first_row);
    for (size_t r = first_row; r < rel->size(); ++r) {
      std::span<const Value> row = view.Scan(r);
      out.emplace_back(row.begin(), row.end());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unordered_set<std::vector<Value>, ValueVecHash> seen;
  seen.reserve(rel->size() - first_row);
  out.reserve(rel->size() - first_row);
  // One scratch answer reused across rows; only kept answers are copied.
  std::vector<Value> answer(vars.size(), 0);
  std::vector<char> set(vars.size(), 0);
  for (size_t r = first_row; r < rel->size(); ++r) {
    std::span<const Value> row = view.Scan(r);
    std::fill(answer.begin(), answer.end(), 0);
    std::fill(set.begin(), set.end(), 0);
    bool ok = true;
    for (size_t i = 0; i < query.args.size() && ok; ++i) {
      const Term& t = query.args[i];
      if (t.IsConst()) {
        ok = row[i] == t.id();
      } else {
        size_t col = var_col[t.id()];
        if (set[col]) {
          ok = row[i] == answer[col];
        } else {
          answer[col] = row[i];
          set[col] = 1;
        }
      }
    }
    if (ok && seen.insert(answer).second) out.push_back(answer);
  }
  std::sort(out.begin(), out.end());
  return out;
}


namespace {

/// Renders one stored tuple as "pred(a, b)".
std::string RenderTuple(const Program& program, const Database& db,
                        const TupleRef& ref) {
  const Context& ctx = program.ctx();
  std::string out = ctx.PredicateDisplayName(ref.pred);
  const Relation* rel = db.Find(ref.pred);
  if (rel == nullptr || ref.row >= rel->size()) return out + "(?)";
  std::span<const Value> row = rel->view().Scan(ref.row);
  if (row.empty()) return out;
  out += "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += ctx.SymbolName(row[i]);
  }
  out += ")";
  return out;
}

void ExplainRecursive(const Program& program, const EvalResult& result,
                      const TupleRef& ref, int depth, std::string* out) {
  for (int i = 0; i < depth; ++i) *out += "  ";
  *out += RenderTuple(program, result.db, ref);
  auto it = result.provenance.find(ref);
  if (it == result.provenance.end() || it->second.rule_index < 0) {
    *out += "   [input fact]\n";
    return;
  }
  *out += "   [rule " + std::to_string(it->second.rule_index) + "]\n";
  for (const TupleRef& child : it->second.children) {
    ExplainRecursive(program, result, child, depth + 1, out);
  }
}

}  // namespace

Result<std::string> ExplainTuple(const Program& program,
                                 const EvalResult& result,
                                 const TupleRef& tuple) {
  const Relation* rel = result.db.Find(tuple.pred);
  if (rel == nullptr || tuple.row >= rel->size()) {
    return Status::NotFound("tuple reference out of range");
  }
  std::string out;
  ExplainRecursive(program, result, tuple, 0, &out);
  return out;
}

Result<std::string> ExplainFact(const Program& program,
                                const EvalResult& result, PredId pred,
                                std::span<const Value> row) {
  const Relation* rel = result.db.Find(pred);
  if (rel == nullptr) return Status::NotFound("no tuples for predicate");
  const Relation::View view = rel->view();
  for (uint32_t r = 0; r < rel->size(); ++r) {
    std::span<const Value> stored = view.Scan(r);
    if (std::equal(stored.begin(), stored.end(), row.begin(), row.end())) {
      return ExplainTuple(program, result, TupleRef{pred, r});
    }
  }
  return Status::NotFound("fact not present");
}

}  // namespace exdl
