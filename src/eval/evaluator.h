// Bottom-up fixpoint evaluation (Section 1.1's model of execution).
//
// Two engines share one executor:
//   * semi-naive (default): per-round deltas; a rule variant reads the
//     delta at one body literal and the pre-round contents elsewhere;
//   * naive: every rule re-fires over full relations each round (the
//     baseline the paper's duplicate-cost remarks are measured against).
//
// Runtime existential optimizations from Section 3.1:
//   * boolean cut — once a 0-ary derived predicate holds, the rules
//     defining it are retired from the fixpoint ("a rule defining a boolean
//     variable can be removed from the computation once the variable
//     becomes true");
//   * ground-query stop — if the query atom is ground, evaluation may stop
//     as soon as it is derived (opt-in; changes stats, not answers).

#ifndef EXDL_EVAL_EVALUATOR_H_
#define EXDL_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "eval/plan.h"
#include "storage/database.h"
#include "storage/representation.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace exdl {

namespace obs {
class Telemetry;
}  // namespace obs

/// Which EvalBudget limit stopped an evaluation early.
enum class BudgetKind : uint8_t {
  kNone = 0,
  kDeadline,          ///< deadline_ms expired.
  kTuples,            ///< max_tuples exceeded.
  kArenaBytes,        ///< max_arena_bytes exceeded.
  kRoundDerivations,  ///< max_derivations_per_round exceeded.
  kCancelled,         ///< the CancellationToken was raised.
};

/// Short stable name ("deadline", "tuples", ...); "none" for kNone.
std::string_view BudgetKindName(BudgetKind kind);

/// Run-time resource budget, enforced cooperatively: at round boundaries
/// and, within a round, every few thousand rows in both the serial loop
/// and the worker pool. All limits are 0 (= unlimited) by default.
///
/// Exceeding a budget does not tear down state: evaluation stops at a
/// round boundary (a partially derived round is discarded), Evaluate
/// returns OK, and EvalResult::termination carries the structured error
/// (kDeadlineExceeded / kResourceExhausted / kCancelled) while db/answers/
/// stats describe the consistent prefix computed so far — every returned
/// tuple is derivable. When no limit trips, results are byte-identical to
/// an ungoverned run (the checks are read-only).
struct EvalBudget {
  /// Wall-clock deadline measured from entry to Evaluate(), milliseconds.
  uint64_t deadline_ms = 0;
  /// Cap on total stored tuples (input + derived) across all relations.
  uint64_t max_tuples = 0;
  /// Cap on total tuple-arena payload bytes (Database::TotalArenaBytes).
  uint64_t max_arena_bytes = 0;
  /// Cap on head tuples buffered within one fixpoint round (pre-dedup);
  /// guards a single exploding cross product between round boundaries.
  uint64_t max_derivations_per_round = 0;
  /// External cancellation (e.g. the CLI's SIGINT token). Not owned; must
  /// outlive the evaluation.
  const CancellationToken* cancellation = nullptr;

  /// True if any limit or token is set (evaluation runs governed).
  bool any() const {
    return deadline_ms != 0 || max_tuples != 0 || max_arena_bytes != 0 ||
           max_derivations_per_round != 0 || cancellation != nullptr;
  }

  // The two canonical constructors, and the ONLY supported budget-source
  // paths — exdlc, bench_util, and the query service all resolve budgets
  // through this single FromEnv call site. Precedence, highest first:
  //
  //   | source                                 | via                      |
  //   |----------------------------------------|--------------------------|
  //   | 1. explicit flags (--deadline-ms, ...) | FromFlags                |
  //   | 2. programmatic fields already set     | the budget FromEnv gets  |
  //   | 3. EXDL_BUDGET_* environment           | FromEnv (zero fields)    |
  //   | 4. legacy EXDL_BENCH_* environment     | FromEnv, deprecated      |
  //
  // So `EvalBudget::FromEnv(EvalBudget::FromFlags(...))` composes all
  // sources. Callers should not read EXDL_* variables themselves. The
  // first time a legacy EXDL_BENCH_* name actually fills a limit, FromEnv
  // emits a one-time deprecation warning on stderr; the legacy names will
  // be dropped once the experiment sweeps migrate.

  /// Budget from explicit limits (0 = unlimited, as with the raw fields).
  static EvalBudget FromFlags(uint64_t deadline_ms, uint64_t max_tuples,
                              uint64_t max_arena_bytes,
                              const CancellationToken* cancellation = nullptr);

  /// Fills every still-zero limit of `base` from the environment:
  /// EXDL_BUDGET_DEADLINE_MS, EXDL_BUDGET_MAX_TUPLES,
  /// EXDL_BUDGET_MAX_ARENA_BYTES (legacy aliases EXDL_BENCH_DEADLINE_MS,
  /// EXDL_BENCH_MAX_TUPLES, EXDL_BENCH_MAX_BYTES are honored when the
  /// primary name is unset, with a one-time deprecation warning).
  /// Unparsable values read as 0 (unlimited).
  static EvalBudget FromEnv(EvalBudget base);
  static EvalBudget FromEnv();
};

/// Exact resume point of a fixpoint, captured at a round boundary (the
/// database has just been flushed; no partial round is in flight). A
/// checkpoint persists this next to the database; Evaluate with
/// EvalOptions::resume set re-enters the delta loop of `stratum` as if the
/// preceding rounds had run in this process.
struct EvalCursor {
  /// Index of the stratum the fixpoint was in (strata before it are
  /// complete; strata after it have not started).
  uint32_t stratum = 0;
  /// Cumulative work counters as of the boundary. eval_seconds is the
  /// wall-clock already spent — a resumed run's deadline budget is charged
  /// for it, and its final stats continue from these values.
  uint64_t rounds = 0;
  uint64_t rule_firings = 0;
  uint64_t tuples_inserted = 0;
  uint64_t duplicate_inserts = 0;
  uint64_t index_probes = 0;
  uint64_t rows_matched = 0;
  uint64_t rules_retired = 0;
  double eval_seconds = 0;
  double max_round_seconds = 0;
  /// Semi-naive delta watermarks: for each predicate of the stratum, the
  /// row id below which tuples are no longer "new". Sorted by PredId so
  /// the encoding is canonical.
  std::vector<std::pair<PredId, uint32_t>> delta_lo;
  /// Rule indices retired by the boolean cut, sorted ascending.
  std::vector<uint32_t> retired_rules;
};

/// Destination for round-boundary checkpoints. The evaluator calls Write
/// with a consistent state (flushed database, matching cursor); the sink
/// must persist it atomically — a failed Write aborts the evaluation with
/// the sink's error, leaving whatever the sink last wrote intact.
/// recovery::Checkpointer is the file-backed implementation.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// Persists one snapshot; returns the number of bytes written.
  virtual Result<uint64_t> Write(const Context& ctx, const Database& db,
                                 const EvalCursor& cursor) = 0;
};

/// Receives every head tuple the fixpoint flushes — new tuples and
/// duplicate re-derivations alike — at round boundaries, from the
/// coordinating thread only (never from pool workers). This is the
/// substrate for counting-based incremental view maintenance (DESIGN.md
/// §16): a ledger that tallies derivations per tuple can later support
/// retraction by decrementing instead of recomputing. The call sequence is
/// deterministic across thread counts and representations (derivations are
/// drained in partition order before the flush). Null sink = a never-taken
/// branch on the flush path.
class SupportSink {
 public:
  virtual ~SupportSink() = default;
  /// One derivation of `row` for `pred`; `inserted` is true when the tuple
  /// was new (false for a duplicate re-derivation).
  virtual void Derived(PredId pred, std::span<const Value> row,
                       bool inserted) = 0;
};

/// Per-evaluation (per-session) options. EvalOptions owns no shared state:
/// every pointer member (telemetry, checkpoint_sink, resume, the budget's
/// cancellation token) is borrowed from the caller, so one options value
/// can be copied per session and sessions never contend through it — the
/// query service hands each session its own copy with its own sinks.
struct EvalOptions {
  bool seminaive = true;
  bool boolean_cut = true;
  bool stop_on_ground_query = false;
  PlanOptions plan;
  /// Safety valve for property tests; 0 = unlimited.
  uint64_t max_rounds = 0;
  /// Record one derivation (rule + child tuples) per derived tuple —
  /// the derivation trees of Section 1.1. Costs memory; see
  /// EvalResult::provenance and ExplainTuple.
  bool record_provenance = false;
  /// Worker threads used to partition each rule variant's outermost row
  /// range. Derivations are buffered per worker and merged in partition
  /// order before the flush, so results (relations, row order, answers)
  /// are byte-identical to serial evaluation. <= 1 — or record_provenance —
  /// evaluates serially.
  uint32_t num_threads = 1;
  /// Physical executor for bitset-eligible rules (DESIGN.md §14): kTuple
  /// forces the generic descent everywhere, kBitset/kAuto run eligible
  /// rules through the batched word-wise kernels. Answers and all
  /// pre-existing telemetry are byte-identical across representations;
  /// only the storage.representation.* counters differ.
  Representation representation = Representation::kAuto;
  /// Semi-naive rounds whose delta is smaller than this row count stay on
  /// the calling thread even when num_threads > 1 — tiny rounds otherwise
  /// pay full pool-dispatch overhead and parallel chains run slower than
  /// serial. 0 resolves EXDL_POOL_MIN_DELTA_ROWS from the environment,
  /// falling back to a built-in default (4096). Set to 1 to dispatch every
  /// parallel-eligible variant regardless of delta size (tests and fault
  /// sweeps that must reach the pool use this). The skip decision is
  /// representation-independent; eval.pool.skipped_rounds counts rounds
  /// where it fired.
  uint32_t pool_min_delta_rows = 0;
  /// Resource governance (deadline, memory, cancellation); see EvalBudget.
  EvalBudget budget;
  /// Observability sink. When non-null the evaluator records trace spans
  /// ("eval > round:<n> > rule:<i>"), per-rule counters (derived,
  /// duplicates, firings, probes — labeled rule=<i>), per-round tuple
  /// growth histograms, budget-trip events, and end-of-run storage gauges.
  /// Worker threads write through per-thread MetricsShards merged at round
  /// boundaries. Null = every site is a never-taken branch; answers, db,
  /// and stats are byte-identical either way. Not owned.
  obs::Telemetry* telemetry = nullptr;
  /// Durable checkpointing. When non-null the evaluator hands the sink a
  /// consistent (database, cursor) pair every `checkpoint_every_rounds`
  /// completed rounds; a sink failure is a hard evaluation error (fail
  /// closed — the last successfully written checkpoint stays the durable
  /// state). Null = checkpointing is a never-taken branch. Not owned.
  CheckpointSink* checkpoint_sink = nullptr;
  uint32_t checkpoint_every_rounds = 1;
  /// Resume from a checkpoint: the input database must be the snapshot's
  /// database and `resume` its cursor. Evaluation skips the completed
  /// strata and rounds and continues the fixpoint exactly where the
  /// checkpoint was cut, producing relations and answers byte-identical to
  /// an uninterrupted run. Not owned; must outlive the evaluation.
  const EvalCursor* resume = nullptr;
  /// Incremental view maintenance (DESIGN.md §16): predicates whose body
  /// literals get semi-naive delta variants *in addition to* the stratum's
  /// growing head predicates. Checkpoint resume only re-derives from
  /// derived-predicate deltas (EDB relations never grow mid-fixpoint);
  /// IVM re-entry appends new EDB facts to a maintained database and names
  /// their predicates here, with the cursor's delta_lo carrying the
  /// pre-insert watermarks, so the delta loop joins the fact delta against
  /// the maintained fixpoint instead of re-running round 0. Meaningful only
  /// together with `resume` under semi-naive evaluation.
  std::vector<PredId> extra_delta_preds;
  /// Counting-support hook (see SupportSink). Not owned.
  SupportSink* support_sink = nullptr;
  /// Leave EvalResult::answers (and ground_query_true) unset instead of
  /// re-extracting them from the full query relation at the end of the
  /// run. Standing-query maintenance sets this and merges the delta
  /// suffix's answers into the previous sorted answer set itself —
  /// extraction over the whole relation would make an otherwise O(delta)
  /// maintenance run O(database).
  bool skip_answers = false;
};

/// Work counters. The paper's "duplicate elimination cost" is
/// `duplicate_inserts`; total facts produced is `rule_firings`.
struct EvalStats {
  uint64_t rounds = 0;
  uint64_t rule_firings = 0;       ///< Head tuples emitted (pre-dedup).
  uint64_t tuples_inserted = 0;    ///< New tuples admitted.
  uint64_t duplicate_inserts = 0;  ///< Emitted tuples that already existed.
  uint64_t index_probes = 0;       ///< Hash-index lookups.
  uint64_t rows_matched = 0;       ///< Rows enumerated from indexes/scans.
  uint64_t rules_retired = 0;      ///< Boolean-cut retirements.
  double eval_seconds = 0;         ///< Wall-clock time inside Evaluate().
  double max_round_seconds = 0;    ///< Longest single fixpoint round.
  /// Which budget stopped evaluation early (kNone after convergence).
  /// `rounds` and `tuples_inserted` then say how far evaluation got.
  BudgetKind budget_tripped = BudgetKind::kNone;

  EvalStats& operator+=(const EvalStats& o);
  std::string ToString() const;
};

/// Representation telemetry for one evaluation (DESIGN.md §14). Kept out
/// of EvalStats on purpose: EvalStats::ToString feeds daemon stats lines
/// and checkpoints, which must stay byte-identical across
/// representations. Rendered as the optional top-level "storage" object
/// of the telemetry document.
struct RepresentationStats {
  /// The representation this evaluation ran with.
  Representation mode = Representation::kAuto;
  /// Arity-1 relations (all carry a word-packed bitset) in the final
  /// database.
  uint64_t bitset_relations = 0;
  /// 64-bit words read by the batched bitset kernels (0 under kTuple).
  uint64_t words_scanned = 0;
  /// Rules that requested the bitset path (kBitset/kAuto) but ran the
  /// generic descent because their plan is not bitset-eligible (or
  /// provenance recording forced the generic path). Always 0 under
  /// kTuple.
  uint64_t fallbacks = 0;

  RepresentationStats& operator+=(const RepresentationStats& o) {
    bitset_relations += o.bitset_relations;
    words_scanned += o.words_scanned;
    fallbacks += o.fallbacks;
    return *this;
  }
};

/// Reference to one stored tuple.
struct TupleRef {
  PredId pred = kInvalidId;
  uint32_t row = 0;
  bool operator==(const TupleRef&) const = default;
};
struct TupleRefHash {
  size_t operator()(const TupleRef& t) const {
    return (static_cast<size_t>(t.pred) << 32) ^ t.row;
  }
};

/// How one tuple was first derived: the rule instance and its body tuples
/// (a node of the Section 1.1 derivation tree). Input facts have
/// rule_index -1 and no children.
struct Provenance {
  int rule_index = -1;
  std::vector<TupleRef> children;
};

struct EvalResult {
  Database db;        ///< Input plus all derived tuples.
  EvalStats stats;
  /// Representation counters (never part of the cross-representation
  /// byte-identity contract; see RepresentationStats).
  RepresentationStats representation;
  /// OK after full convergence. After a budget trip: kDeadlineExceeded /
  /// kResourceExhausted / kCancelled, and db/answers/stats hold the
  /// consistent prefix as of the last completed round (see EvalBudget).
  Status termination;
  /// Bindings of the query atom's distinct variables (first-occurrence
  /// order), deduplicated and sorted. Empty when the program has no query.
  std::vector<std::vector<Value>> answers;
  /// For a ground query: whether it was derived.
  bool ground_query_true = false;
  /// One derivation per derived tuple (only with record_provenance).
  std::unordered_map<TupleRef, Provenance, TupleRefHash> provenance;
};

/// Evaluates `program` bottom-up over `input`. `input` may contain facts
/// for derived predicates (uniform semantics, Section 4); they are treated
/// as already-derived tuples.
Result<EvalResult> Evaluate(const Program& program, const Database& input,
                            const EvalOptions& options = EvalOptions());

/// Ownership-taking variant: evaluates directly on `input` (moved into
/// the result) instead of a copy-on-write clone. With a uniquely-owned
/// database this keeps inserts truly incremental — no lazy payload
/// detach copies — which is what makes standing-query maintenance
/// (DESIGN.md §16) O(delta) instead of O(database). On failure the
/// database is consumed; callers that need it back must clone first.
Result<EvalResult> Evaluate(const Program& program, Database&& input,
                            const EvalOptions& options = EvalOptions());

/// Extracts query answers from an already-computed database (exposed for
/// the equivalence testers). With `first_row`, only rows of the query
/// relation at index >= first_row are considered — the suffix extraction
/// standing-query maintenance merges into its previous answers. The
/// returned rows are sorted and deduplicated either way.
std::vector<std::vector<Value>> ExtractAnswers(const Atom& query,
                                               const Database& db,
                                               size_t first_row = 0);

/// Renders the recorded derivation tree of one tuple as an indented
/// listing ("fact <- rule: child, child ..."). Requires the evaluation to
/// have run with record_provenance; tuples without provenance render as
/// input facts.
Result<std::string> ExplainTuple(const Program& program,
                                 const EvalResult& result,
                                 const TupleRef& tuple);

/// Convenience: explains the first stored tuple of `pred` matching `row`
/// values exactly; NotFound when absent.
Result<std::string> ExplainFact(const Program& program,
                                const EvalResult& result, PredId pred,
                                std::span<const Value> row);

}  // namespace exdl

#endif  // EXDL_EVAL_EVALUATOR_H_
