// Rule compilation: turn a rule into an executable join plan.
//
// Execution model: a register file holds one Value per rule variable; body
// literals are processed in a chosen order. For each literal, arguments
// that are constants or already-bound variables form an index key; the
// relation's hash index enumerates matching rows, the remaining arguments
// bind fresh registers (with equality checks for repeated variables), and
// control recurses to the next literal. When all literals match, the head
// tuple is emitted.

#ifndef EXDL_EVAL_PLAN_H_
#define EXDL_EVAL_PLAN_H_

#include <cstdint>
#include <vector>

#include "ast/rule.h"
#include "storage/relation.h"
#include "util/status.h"

namespace exdl {

/// One argument of a compiled literal or head: a constant or a register.
struct ArgSpec {
  enum class Kind : uint8_t { kConst, kReg };
  Kind kind;
  Value const_value = 0;  ///< Valid when kind == kConst.
  uint32_t reg = 0;       ///< Valid when kind == kReg.

  static ArgSpec Const(Value v) { return {Kind::kConst, v, 0}; }
  static ArgSpec Reg(uint32_t r) { return {Kind::kReg, 0, r}; }
};

/// One body literal, compiled.
struct LiteralStep {
  PredId pred = kInvalidId;
  std::vector<ArgSpec> args;
  /// Argument positions usable as an index key: constants plus variables
  /// bound by earlier steps. Sorted ascending. For negated steps this is
  /// every position (safety requires all variables bound first).
  std::vector<uint32_t> index_columns;
  /// Registers that become bound after this step (first occurrences).
  /// Always empty for negated steps.
  std::vector<uint32_t> binds;
  /// Index of this literal in the original rule body (delta designation in
  /// semi-naive evaluation is per original body position).
  size_t body_position = 0;
  /// Anti-join: succeed iff NO matching tuple exists. Scheduled after the
  /// positive literals that bind its variables (stratified semantics: the
  /// relation read is from a strictly lower stratum and no longer grows).
  bool negated = false;
  /// Bitset-eligible literal (DESIGN.md §14): a unary membership test —
  /// arity 1 with the single position fully bound (index_columns == {0}),
  /// positive or negated. Executors answer these from the relation's
  /// word-packed bitset instead of a hash index, in every representation.
  bool bitset_eligible = false;
};

/// A fully compiled rule.
struct RulePlan {
  PredId head_pred = kInvalidId;
  std::vector<ArgSpec> head_args;
  std::vector<LiteralStep> steps;
  uint32_t num_regs = 0;
  /// steps index for each original body position (inverse of
  /// LiteralStep::body_position).
  std::vector<size_t> step_of_body_position;
  /// Whole-rule bitset-kernel eligibility (DESIGN.md §14): step 0 is a
  /// pure scan binding only fresh distinct registers over an arity-1 or
  /// arity-2 relation, every later step is a unary membership test
  /// (bitset_eligible above) except at most one binary index probe that
  /// binds exactly one fresh register. Under --representation=bitset/auto
  /// the evaluator runs such rules through the batched bitset kernels;
  /// anything else falls back to the generic descent (counted in
  /// storage.representation.fallbacks), with byte-identical answers and
  /// counters either way.
  bool bitset_eligible = false;
  /// Step index of the single binary index-probe step, or SIZE_MAX when
  /// the rule has none. Meaningful only when bitset_eligible.
  size_t binary_probe_step = static_cast<size_t>(-1);
};

struct PlanOptions {
  /// Greedily reorder body literals so that literals sharing variables with
  /// already-planned ones come first (most bound arguments wins, ties by
  /// original position). Off = execute in written order.
  bool reorder = true;
  /// Governance backstop: refuse (kInvalidArgument) rules whose body
  /// exceeds this many literals. The parser caps its own input, but
  /// programs built through the API reach the evaluator directly — an
  /// adversarial rule would otherwise cost O(n^2) in reordering and an
  /// n-deep join descent. 0 = unlimited.
  uint32_t max_body_literals = 4096;
  /// Force the literal at this original body position to be step 0; the
  /// remaining literals are ordered as usual behind it. Used to compile
  /// delta-first variant plans for semi-naive evaluation: the variant's
  /// delta literal becomes the outer scan, so the variant's cost is
  /// O(delta x probes) instead of a full outer-relation scan per round.
  /// Must name a positive literal. SIZE_MAX = no forcing.
  size_t first_body_position = static_cast<size_t>(-1);
};

/// Compiles `rule`. Fails if the rule is unsafe (a head variable that no
/// body literal binds).
Result<RulePlan> CompileRule(const Rule& rule, const PlanOptions& options);

/// Human-readable plan listing: one line per step with access path
/// ("index on (0,1)" vs "scan"), negation marking, and the head emission.
std::string PlanToString(const Context& ctx, const RulePlan& plan);


}  // namespace exdl
#endif  // EXDL_EVAL_PLAN_H_
