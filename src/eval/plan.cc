#include "eval/plan.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace exdl {
namespace {

/// Number of argument positions of `atom` that are constants or variables
/// in `bound`.
size_t BoundArgCount(const Atom& atom,
                     const std::unordered_set<SymbolId>& bound) {
  size_t n = 0;
  for (const Term& t : atom.args) {
    if (t.IsConst() || bound.count(t.id()) > 0) ++n;
  }
  return n;
}

}  // namespace

Result<RulePlan> CompileRule(const Rule& rule, const PlanOptions& options) {
  if (options.max_body_literals != 0 &&
      rule.body.size() > options.max_body_literals) {
    return Status::InvalidArgument(
        "rule body has " + std::to_string(rule.body.size()) +
        " literals, above the plan limit of " +
        std::to_string(options.max_body_literals));
  }
  RulePlan plan;
  plan.head_pred = rule.head.pred;

  std::unordered_map<SymbolId, uint32_t> reg_of;
  auto reg_for = [&](SymbolId v) {
    auto [it, inserted] =
        reg_of.emplace(v, static_cast<uint32_t>(reg_of.size()));
    return it->second;
  };

  // Choose a literal order. A negated literal is only eligible once every
  // one of its variables is bound by earlier positive literals (safe
  // negation); in no-reorder mode the written order must already satisfy
  // this.
  auto fully_bound = [](const Atom& atom,
                        const std::unordered_set<SymbolId>& bound) {
    for (const Term& t : atom.args) {
      if (t.IsVar() && bound.count(t.id()) == 0) return false;
    }
    return true;
  };
  std::vector<size_t> order;
  order.reserve(rule.body.size());
  {
    std::vector<bool> used(rule.body.size(), false);
    std::unordered_set<SymbolId> bound;
    for (size_t k = 0; k < rule.body.size(); ++k) {
      size_t best = static_cast<size_t>(-1);
      size_t best_score = 0;
      bool have_best = false;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (used[i]) continue;
        const Atom& atom = rule.body[i];
        if (atom.negated && !fully_bound(atom, bound)) continue;
        size_t score = BoundArgCount(atom, bound);
        // Prefer eligible negated literals immediately (they only filter).
        if (atom.negated) score += atom.args.size() + 1;
        if (!have_best || (options.reorder && score > best_score)) {
          best = i;
          best_score = score;
          have_best = true;
          // No-reorder mode: first eligible literal in written order.
          if (!options.reorder) break;
        }
      }
      if (!have_best) {
        return Status::InvalidArgument(
            "unsafe negation: a negated literal's variable is never bound "
            "by a positive literal");
      }
      used[best] = true;
      order.push_back(best);
      if (!rule.body[best].negated) {
        for (const Term& t : rule.body[best].args) {
          if (t.IsVar()) bound.insert(t.id());
        }
      }
    }
  }

  // Compile literals in the chosen order.
  std::unordered_set<uint32_t> bound_regs;
  plan.step_of_body_position.assign(rule.body.size(), 0);
  for (size_t step_idx = 0; step_idx < order.size(); ++step_idx) {
    size_t body_pos = order[step_idx];
    const Atom& atom = rule.body[body_pos];
    LiteralStep step;
    step.pred = atom.pred;
    step.body_position = body_pos;
    step.negated = atom.negated;
    std::unordered_set<uint32_t> bound_in_step;  // regs first bound here
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.IsConst()) {
        step.args.push_back(ArgSpec::Const(t.id()));
        step.index_columns.push_back(static_cast<uint32_t>(i));
        continue;
      }
      uint32_t reg = reg_for(t.id());
      step.args.push_back(ArgSpec::Reg(reg));
      if (bound_regs.count(reg) > 0) {
        step.index_columns.push_back(static_cast<uint32_t>(i));
      } else if (atom.negated) {
        // The ordering above guarantees this cannot happen.
        return Status::Internal("negated literal scheduled before binding");
      } else if (bound_in_step.insert(reg).second) {
        step.binds.push_back(reg);
      }
      // A repeated new variable within the literal is checked by the
      // executor (first occurrence binds, later ones compare).
    }
    for (uint32_t r : step.binds) bound_regs.insert(r);
    plan.step_of_body_position[body_pos] = step_idx;
    plan.steps.push_back(std::move(step));
  }

  // Compile the head; every head variable must be bound by the body.
  for (const Term& t : rule.head.args) {
    if (t.IsConst()) {
      plan.head_args.push_back(ArgSpec::Const(t.id()));
      continue;
    }
    auto it = reg_of.find(t.id());
    if (it == reg_of.end() || bound_regs.count(it->second) == 0) {
      return Status::InvalidArgument(
          "unsafe rule: head variable not bound by any body literal");
    }
    plan.head_args.push_back(ArgSpec::Reg(it->second));
  }

  plan.num_regs = static_cast<uint32_t>(reg_of.size());
  return plan;
}

}  // namespace exdl

namespace exdl {

std::string PlanToString(const Context& ctx, const RulePlan& plan) {
  auto render_args = [&](const std::vector<ArgSpec>& args) {
    std::string out = "(";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      if (args[i].kind == ArgSpec::Kind::kConst) {
        out += ctx.SymbolName(args[i].const_value);
      } else {
        out += "r" + std::to_string(args[i].reg);
      }
    }
    out += ")";
    return out;
  };
  std::string out;
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const LiteralStep& step = plan.steps[s];
    out += "  step " + std::to_string(s) + ": ";
    if (step.negated) out += "anti-join ";
    out += ctx.PredicateDisplayName(step.pred) + render_args(step.args);
    if (step.index_columns.empty()) {
      out += "  [scan]";
    } else {
      out += "  [index on (";
      for (size_t i = 0; i < step.index_columns.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(step.index_columns[i]);
      }
      out += ")]";
    }
    if (!step.binds.empty()) {
      out += " binds";
      for (uint32_t r : step.binds) out += " r" + std::to_string(r);
    }
    out += "\n";
  }
  out += "  emit " + ctx.PredicateDisplayName(plan.head_pred) +
         render_args(plan.head_args) + "\n";
  return out;
}

}  // namespace exdl
