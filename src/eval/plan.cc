#include "eval/plan.h"

#include <algorithm>

namespace exdl {
namespace {

// Rule bodies are tiny (max_body_literals caps them), so every symbol /
// register set below is a flat vector with linear membership — compiling a
// rule on the hot path (one-shot Evaluate compiles per call) allocates a
// handful of short vectors and no hash tables.

bool VecContains(const std::vector<SymbolId>& v, SymbolId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Compile-time working sets, reused across CompileRule calls on the same
/// thread: one-shot Evaluate compiles every rule per call, so after the
/// first rule these vectors never reallocate (their capacity is bounded by
/// the largest rule seen).
struct CompileScratch {
  std::vector<SymbolId> reg_syms;  ///< register r holds reg_syms[r]
  std::vector<SymbolId> bound;     ///< variables bound so far (ordering)
  std::vector<size_t> order;       ///< chosen literal order
  std::vector<char> used;          ///< literal already placed in order
  std::vector<char> bound_regs;    ///< register bound by an earlier step
};

/// Number of argument positions of `atom` that are constants or variables
/// in `bound`.
size_t BoundArgCount(const Atom& atom, const std::vector<SymbolId>& bound) {
  size_t n = 0;
  for (const Term& t : atom.args) {
    if (t.IsConst() || VecContains(bound, t.id())) ++n;
  }
  return n;
}

}  // namespace

Result<RulePlan> CompileRule(const Rule& rule, const PlanOptions& options) {
  if (options.max_body_literals != 0 &&
      rule.body.size() > options.max_body_literals) {
    return Status::InvalidArgument(
        "rule body has " + std::to_string(rule.body.size()) +
        " literals, above the plan limit of " +
        std::to_string(options.max_body_literals));
  }
  RulePlan plan;
  plan.head_pred = rule.head.pred;
  plan.steps.reserve(rule.body.size());
  plan.head_args.reserve(rule.head.args.size());

  static thread_local CompileScratch scratch;
  std::vector<SymbolId>& reg_syms = scratch.reg_syms;
  reg_syms.clear();
  auto reg_for = [&](SymbolId v) {
    for (uint32_t r = 0; r < reg_syms.size(); ++r) {
      if (reg_syms[r] == v) return r;
    }
    reg_syms.push_back(v);
    return static_cast<uint32_t>(reg_syms.size() - 1);
  };

  // Choose a literal order. A negated literal is only eligible once every
  // one of its variables is bound by earlier positive literals (safe
  // negation); in no-reorder mode the written order must already satisfy
  // this.
  auto fully_bound = [](const Atom& atom,
                        const std::vector<SymbolId>& bound) {
    for (const Term& t : atom.args) {
      if (t.IsVar() && !VecContains(bound, t.id())) return false;
    }
    return true;
  };
  std::vector<size_t>& order = scratch.order;
  order.clear();
  {
    std::vector<char>& used = scratch.used;
    used.assign(rule.body.size(), 0);
    std::vector<SymbolId>& bound = scratch.bound;
    bound.clear();
    // Delta-first forcing: pin the designated literal as step 0, then let
    // the usual ordering place the rest behind it (their scores now see
    // the forced literal's variables as bound, so joins against it become
    // index probes).
    if (options.first_body_position != static_cast<size_t>(-1)) {
      const size_t first = options.first_body_position;
      if (first >= rule.body.size() || rule.body[first].negated) {
        return Status::InvalidArgument(
            "first_body_position must name a positive body literal");
      }
      used[first] = 1;
      order.push_back(first);
      for (const Term& t : rule.body[first].args) {
        if (t.IsVar() && !VecContains(bound, t.id())) bound.push_back(t.id());
      }
    }
    for (size_t k = order.size(); k < rule.body.size(); ++k) {
      size_t best = static_cast<size_t>(-1);
      size_t best_score = 0;
      bool have_best = false;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (used[i]) continue;
        const Atom& atom = rule.body[i];
        if (atom.negated && !fully_bound(atom, bound)) continue;
        size_t score = BoundArgCount(atom, bound);
        // Prefer eligible negated literals immediately (they only filter).
        if (atom.negated) score += atom.args.size() + 1;
        if (!have_best || (options.reorder && score > best_score)) {
          best = i;
          best_score = score;
          have_best = true;
          // No-reorder mode: first eligible literal in written order.
          if (!options.reorder) break;
        }
      }
      if (!have_best) {
        return Status::InvalidArgument(
            "unsafe negation: a negated literal's variable is never bound "
            "by a positive literal");
      }
      used[best] = true;
      order.push_back(best);
      if (!rule.body[best].negated) {
        for (const Term& t : rule.body[best].args) {
          if (t.IsVar() && !VecContains(bound, t.id())) {
            bound.push_back(t.id());
          }
        }
      }
    }
  }

  // Compile literals in the chosen order. Registers are dense ids, so the
  // bound set is a flag per register.
  std::vector<char>& bound_regs = scratch.bound_regs;
  bound_regs.clear();
  plan.step_of_body_position.assign(rule.body.size(), 0);
  for (size_t step_idx = 0; step_idx < order.size(); ++step_idx) {
    size_t body_pos = order[step_idx];
    const Atom& atom = rule.body[body_pos];
    LiteralStep step;
    step.pred = atom.pred;
    step.body_position = body_pos;
    step.negated = atom.negated;
    step.args.reserve(atom.args.size());
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.IsConst()) {
        step.args.push_back(ArgSpec::Const(t.id()));
        step.index_columns.push_back(static_cast<uint32_t>(i));
        continue;
      }
      uint32_t reg = reg_for(t.id());
      if (reg >= bound_regs.size()) bound_regs.resize(reg + 1, 0);
      step.args.push_back(ArgSpec::Reg(reg));
      if (bound_regs[reg]) {
        step.index_columns.push_back(static_cast<uint32_t>(i));
      } else if (atom.negated) {
        // The ordering above guarantees this cannot happen.
        return Status::Internal("negated literal scheduled before binding");
      } else if (std::find(step.binds.begin(), step.binds.end(), reg) ==
                 step.binds.end()) {
        step.binds.push_back(reg);  // first occurrence in this literal
      }
      // A repeated new variable within the literal is checked by the
      // executor (first occurrence binds, later ones compare).
    }
    for (uint32_t r : step.binds) bound_regs[r] = 1;
    plan.step_of_body_position[body_pos] = step_idx;
    plan.steps.push_back(std::move(step));
  }

  // Compile the head; every head variable must be bound by the body.
  for (const Term& t : rule.head.args) {
    if (t.IsConst()) {
      plan.head_args.push_back(ArgSpec::Const(t.id()));
      continue;
    }
    auto it = std::find(reg_syms.begin(), reg_syms.end(), t.id());
    const size_t reg = static_cast<size_t>(it - reg_syms.begin());
    if (it == reg_syms.end() || reg >= bound_regs.size() ||
        !bound_regs[reg]) {
      return Status::InvalidArgument(
          "unsafe rule: head variable not bound by any body literal");
    }
    plan.head_args.push_back(ArgSpec::Reg(static_cast<uint32_t>(reg)));
  }

  plan.num_regs = static_cast<uint32_t>(reg_syms.size());

  // Bitset eligibility (DESIGN.md §14). Per literal: a unary membership
  // test — one argument, fully bound (constant or earlier-bound register),
  // so index_columns == {0} and nothing binds. Per rule: step 0 must be a
  // pure scan over an arity-1/2 relation binding only fresh distinct
  // registers, and every later step must be a unary membership test except
  // at most one binary index probe binding exactly one fresh register.
  // Rules outside this shape run the generic descent in every
  // representation (a storage.representation.fallbacks count under
  // bitset/auto); answers and counters are identical either way.
  plan.bitset_eligible = !plan.steps.empty();
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    LiteralStep& step = plan.steps[s];
    step.bitset_eligible = step.args.size() == 1 &&
                           step.index_columns.size() == 1 &&
                           step.binds.empty();
    if (s == 0) {
      if (step.negated || !step.index_columns.empty() ||
          step.args.empty() || step.args.size() > 2 ||
          step.binds.size() != step.args.size()) {
        plan.bitset_eligible = false;
      }
      continue;
    }
    if (step.bitset_eligible) continue;  // unary test, positive or negated
    if (!step.negated && step.args.size() == 2 &&
        step.index_columns.size() == 1 && step.binds.size() == 1 &&
        plan.binary_probe_step == static_cast<size_t>(-1)) {
      plan.binary_probe_step = s;
      continue;
    }
    plan.bitset_eligible = false;
  }
  if (!plan.bitset_eligible) {
    plan.binary_probe_step = static_cast<size_t>(-1);
  }
  return plan;
}

}  // namespace exdl

namespace exdl {

std::string PlanToString(const Context& ctx, const RulePlan& plan) {
  auto render_args = [&](const std::vector<ArgSpec>& args) {
    std::string out = "(";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      if (args[i].kind == ArgSpec::Kind::kConst) {
        out += ctx.SymbolName(args[i].const_value);
      } else {
        out += "r" + std::to_string(args[i].reg);
      }
    }
    out += ")";
    return out;
  };
  std::string out;
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const LiteralStep& step = plan.steps[s];
    out += "  step " + std::to_string(s) + ": ";
    if (step.negated) out += "anti-join ";
    out += ctx.PredicateDisplayName(step.pred) + render_args(step.args);
    if (step.index_columns.empty()) {
      out += "  [scan]";
    } else if (step.bitset_eligible) {
      out += "  [bitset probe]";
    } else {
      out += "  [index on (";
      for (size_t i = 0; i < step.index_columns.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(step.index_columns[i]);
      }
      out += ")]";
    }
    if (!step.binds.empty()) {
      out += " binds";
      for (uint32_t r : step.binds) out += " r" + std::to_string(r);
    }
    out += "\n";
  }
  out += "  emit " + ctx.PredicateDisplayName(plan.head_pred) +
         render_args(plan.head_args);
  if (plan.bitset_eligible) out += "  [bitset-eligible]";
  out += "\n";
  return out;
}

}  // namespace exdl
