#include "core/engine.h"

#include <fstream>
#include <sstream>

#include "ast/printer.h"
#include "parser/parser.h"

namespace exdl {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  if (options_.collect_telemetry) {
    owned_telemetry_ = std::make_unique<obs::Telemetry>();
  }
}

Engine::~Engine() = default;

obs::Telemetry* Engine::telemetry() {
  if (options_.eval.telemetry != nullptr) return options_.eval.telemetry;
  if (options_.optimizer.telemetry != nullptr) {
    return options_.optimizer.telemetry;
  }
  return owned_telemetry_.get();
}

const obs::Telemetry* Engine::telemetry() const {
  return const_cast<Engine*>(this)->telemetry();
}

void Engine::SyncSession() {
  SessionOptions& session_options = session_.options();
  session_options.eval = options_.eval;
  session_options.checkpoint = options_.checkpoint;
  session_options.telemetry = telemetry();
}

Status Engine::LoadSource(std::string_view source) {
  ContextPtr ctx = std::make_shared<Context>();
  EXDL_ASSIGN_OR_RETURN(ParsedUnit parsed, ParseProgram(source, ctx));
  Database edb;
  for (const Atom& fact : parsed.facts) {
    EXDL_RETURN_IF_ERROR(edb.AddFact(fact));
  }
  return LoadProgram(std::move(parsed.program), std::move(edb));
}

Status Engine::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadSource(buffer.str());
}

Status Engine::LoadProgram(Program program, Database edb) {
  ctx_ = program.context();
  program_ = std::move(program);
  edb_ = std::move(edb);
  report_ = OptimizationReport();
  optimize_termination_ = Status::Ok();
  magic_seed_.reset();
  optimized_ = false;
  session_ = Session();
  return Status::Ok();
}

uint64_t Engine::ProgramFingerprint() const {
  if (!program_) return 0;
  return CompiledProgram::Fingerprint(*program_, options_.eval);
}

Status Engine::Resume(const std::string& checkpoint_path) {
  if (!program_) return Status::FailedPrecondition("no program loaded");
  EXDL_ASSIGN_OR_RETURN(recovery::Snapshot snap,
                        recovery::ReadSnapshotFile(checkpoint_path));
  SyncSession();
  return session_.ArmResume(std::move(snap), *program_, ProgramFingerprint(),
                            checkpoint_path);
}

Status Engine::Optimize() {
  if (!program_) return Status::FailedPrecondition("no program loaded");
  OptimizerOptions opt = options_.optimizer;
  if (opt.telemetry == nullptr) opt.telemetry = telemetry();
  EXDL_ASSIGN_OR_RETURN(OptimizedProgram optimized,
                        OptimizeExistential(*program_, opt));
  program_ = std::move(optimized.program);
  report_ = std::move(optimized.report);
  optimize_termination_ = std::move(optimized.termination);
  magic_seed_ = std::move(optimized.magic_seed);
  if (magic_seed_) {
    EXDL_RETURN_IF_ERROR(edb_.AddFact(*magic_seed_));
  }
  optimized_ = true;
  return Status::Ok();
}

Result<EvalResult> Engine::Run() {
  if (!program_) return Status::FailedPrecondition("no program loaded");
  SyncSession();
  return session_.Run(*program_, edb_);
}

Result<EvalResult> Engine::Evaluate(const Program& program,
                                    const Database& edb) {
  SyncSession();
  return session_.Evaluate(program, edb);
}

std::string Engine::TelemetryJson(std::string_view command,
                                  std::string_view source) const {
  std::vector<std::string> rule_texts = session_.summary().rule_texts;
  if (rule_texts.empty() && program_) {
    for (const Rule& rule : program_->rules()) {
      rule_texts.push_back(ToString(*ctx_, rule));
    }
  }
  return RenderTelemetryDoc(command, source, session_.summary(), rule_texts,
                            optimized_, report_, optimize_termination_,
                            telemetry());
}

}  // namespace exdl
