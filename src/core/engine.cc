#include "core/engine.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "ast/printer.h"
#include "obs/json_writer.h"
#include "parser/parser.h"

namespace exdl {

namespace {

/// Stable lowercase termination label for the JSON export.
std::string_view TerminationLabel(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    default: return "error";
  }
}

/// Snapshot lookup key: metric name + the value of its "rule" label (the
/// only label the per-rule metrics carry).
std::string RuleMetricKey(std::string_view name, size_t rule_index) {
  std::string key(name);
  key.push_back('\0');
  key += std::to_string(rule_index);
  return key;
}

/// FNV-1a over the printed program plus the semantics-affecting options:
/// the printer is deterministic, and a resuming process re-derives this
/// from its own freshly loaded session, so equal fingerprints mean "the
/// same fixpoint computation".
uint64_t FingerprintProgram(const Program& program, const EvalOptions& eval) {
  std::string repr = ToString(program);
  repr += eval.seminaive ? "|seminaive" : "|naive";
  repr += eval.boolean_cut ? "|cut" : "|nocut";
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : repr) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  if (options_.collect_telemetry) {
    owned_telemetry_ = std::make_unique<obs::Telemetry>();
  }
}

Engine::~Engine() = default;

obs::Telemetry* Engine::telemetry() {
  if (options_.eval.telemetry != nullptr) return options_.eval.telemetry;
  if (options_.optimizer.telemetry != nullptr) {
    return options_.optimizer.telemetry;
  }
  return owned_telemetry_.get();
}

const obs::Telemetry* Engine::telemetry() const {
  return const_cast<Engine*>(this)->telemetry();
}

Status Engine::LoadSource(std::string_view source) {
  ContextPtr ctx = std::make_shared<Context>();
  EXDL_ASSIGN_OR_RETURN(ParsedUnit parsed, ParseProgram(source, ctx));
  Database edb;
  for (const Atom& fact : parsed.facts) {
    EXDL_RETURN_IF_ERROR(edb.AddFact(fact));
  }
  return LoadProgram(std::move(parsed.program), std::move(edb));
}

Status Engine::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadSource(buffer.str());
}

Status Engine::LoadProgram(Program program, Database edb) {
  ctx_ = program.context();
  program_ = std::move(program);
  edb_ = std::move(edb);
  report_ = OptimizationReport();
  optimize_termination_ = Status::Ok();
  magic_seed_.reset();
  optimized_ = false;
  has_run_ = false;
  last_stats_ = EvalStats();
  last_answers_ = 0;
  last_termination_ = Status::Ok();
  checkpointer_.reset();
  resume_.reset();
  return Status::Ok();
}

uint64_t Engine::ProgramFingerprint() const {
  if (!program_) return 0;
  return FingerprintProgram(*program_, options_.eval);
}

Status Engine::Resume(const std::string& checkpoint_path) {
  if (!program_) return Status::FailedPrecondition("no program loaded");
  if (options_.eval.record_provenance) {
    return Status::FailedPrecondition(
        "cannot resume with record_provenance: derivations of completed "
        "rounds are not checkpointed");
  }
  EXDL_ASSIGN_OR_RETURN(recovery::Snapshot snap,
                        recovery::ReadSnapshotFile(checkpoint_path));
  if (snap.program_fingerprint != ProgramFingerprint()) {
    return Status::FailedPrecondition(
        "checkpoint was written by a different program or evaluation "
        "options: " + checkpoint_path);
  }
  // The snapshot's ids are only meaningful if this session's interning
  // tables — rebuilt by re-parsing and re-optimizing — are identical to
  // the writer's. The fingerprint already pinned the program text, so a
  // mismatch here means the snapshot was tampered with.
  if (snap.symbols.size() != ctx_->NumSymbols() ||
      snap.preds.size() != ctx_->NumPredicates()) {
    return Status::CorruptCheckpoint(
        "snapshot interning tables disagree with the session context");
  }
  for (SymbolId s = 0; s < snap.symbols.size(); ++s) {
    if (snap.symbols[s] != ctx_->SymbolName(s)) {
      return Status::CorruptCheckpoint(
          "snapshot symbol table disagrees with the session context");
    }
  }
  for (PredId p = 0; p < snap.preds.size(); ++p) {
    const PredicateInfo& info = ctx_->predicate(p);
    const recovery::SnapshotPred& stored = snap.preds[p];
    if (stored.name != info.name || stored.arity != info.arity ||
        stored.adornment != info.adornment.str()) {
      return Status::CorruptCheckpoint(
          "snapshot predicate table disagrees with the session context");
    }
  }
  if (!snap.cursor.retired_rules.empty() &&
      snap.cursor.retired_rules.back() >= program_->rules().size()) {
    return Status::CorruptCheckpoint(
        "snapshot retires a rule the program does not have");
  }
  resume_ = std::move(snap);
  return Status::Ok();
}

Status Engine::Optimize() {
  if (!program_) return Status::FailedPrecondition("no program loaded");
  OptimizerOptions opt = options_.optimizer;
  if (opt.telemetry == nullptr) opt.telemetry = telemetry();
  EXDL_ASSIGN_OR_RETURN(OptimizedProgram optimized,
                        OptimizeExistential(*program_, opt));
  program_ = std::move(optimized.program);
  report_ = std::move(optimized.report);
  optimize_termination_ = std::move(optimized.termination);
  magic_seed_ = std::move(optimized.magic_seed);
  if (magic_seed_) {
    EXDL_RETURN_IF_ERROR(edb_.AddFact(*magic_seed_));
  }
  optimized_ = true;
  return Status::Ok();
}

Result<EvalResult> Engine::Run() {
  if (!program_) return Status::FailedPrecondition("no program loaded");
  if (!resume_.has_value()) return Evaluate(*program_, edb_);
  // Resume: evaluate over the snapshot's database from its cursor. The
  // snapshot is consumed either way — a failed resume must not silently
  // turn a later Run() into another resume attempt.
  Result<EvalResult> result =
      EvaluateInternal(*program_, resume_->db, &resume_->cursor);
  resume_.reset();
  return result;
}

Result<EvalResult> Engine::Evaluate(const Program& program,
                                    const Database& edb) {
  return EvaluateInternal(program, edb, nullptr);
}

Result<EvalResult> Engine::EvaluateInternal(const Program& program,
                                            const Database& edb,
                                            const EvalCursor* resume) {
  EvalOptions eval = options_.eval;
  if (eval.telemetry == nullptr) eval.telemetry = telemetry();
  if (eval.telemetry != nullptr) {
    last_rule_texts_.clear();
    for (const Rule& rule : program.rules()) {
      last_rule_texts_.push_back(ToString(*program.context(), rule));
    }
  }
  if (!options_.checkpoint.directory.empty()) {
    // Rebuilt per evaluation: the fingerprint depends on the loaded
    // program, which may have changed since the last Run().
    checkpointer_ = std::make_unique<recovery::Checkpointer>(
        options_.checkpoint.directory, FingerprintProgram(program, eval));
    eval.checkpoint_sink = checkpointer_.get();
    eval.checkpoint_every_rounds =
        std::max(1u, options_.checkpoint.every_rounds);
  }
  eval.resume = resume;
  Result<EvalResult> result = ::exdl::Evaluate(program, edb, eval);
  if (result.ok()) {
    has_run_ = true;
    last_stats_ = result->stats;
    last_answers_ = result->answers.size();
    last_termination_ = result->termination;
  }
  return result;
}

std::string Engine::TelemetryJson(std::string_view command,
                                  std::string_view source) const {
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("generator");
  w.String("exdatalog");
  w.Key("command");
  w.String(command);
  w.Key("source");
  w.String(source);

  w.Key("answers");
  w.UInt(last_answers_);
  w.Key("termination");
  w.String(TerminationLabel(!last_termination_.ok() ? last_termination_
                                                    : optimize_termination_));
  w.Key("stats");
  w.BeginObject();
  w.Key("rounds");
  w.UInt(last_stats_.rounds);
  w.Key("rule_firings");
  w.UInt(last_stats_.rule_firings);
  w.Key("tuples_inserted");
  w.UInt(last_stats_.tuples_inserted);
  w.Key("duplicate_inserts");
  w.UInt(last_stats_.duplicate_inserts);
  w.Key("index_probes");
  w.UInt(last_stats_.index_probes);
  w.Key("rows_matched");
  w.UInt(last_stats_.rows_matched);
  w.Key("rules_retired");
  w.UInt(last_stats_.rules_retired);
  w.Key("eval_seconds");
  w.Double(last_stats_.eval_seconds);
  w.Key("max_round_seconds");
  w.Double(last_stats_.max_round_seconds);
  w.Key("budget_tripped");
  w.String(BudgetKindName(last_stats_.budget_tripped));
  w.EndObject();

  w.Key("optimize");
  w.BeginObject();
  w.Key("ran");
  w.Bool(optimized_);
  w.Key("original_rules");
  w.UInt(report_.original_rules);
  w.Key("final_rules");
  w.UInt(report_.final_rules);
  w.Key("optimize_seconds");
  w.Double(report_.optimize_seconds);
  w.Key("interrupted_before");
  w.String(report_.interrupted_before);
  w.EndObject();

  w.Key("phases");
  w.BeginArray();
  for (const OptimizationPhase& phase : report_.phases) {
    w.BeginObject();
    w.Key("name");
    w.String(phase.name);
    w.Key("seconds");
    w.Double(phase.seconds);
    w.Key("rules_before");
    w.UInt(phase.rules_before);
    w.Key("rules_after");
    w.UInt(phase.rules_after);
    w.Key("rule_delta");
    w.Int(phase.RuleDelta());
    w.Key("interrupted");
    w.Bool(phase.interrupted);
    w.Key("detail");
    w.String(phase.detail);
    w.EndObject();
  }
  w.EndArray();

  // Per-rule rows: rule text from the loaded program, counters from the
  // metrics snapshot (zero when telemetry is off or the rule never fired).
  const obs::Telemetry* t = telemetry();
  std::unordered_map<std::string, const obs::MetricRow*> by_rule;
  std::vector<obs::MetricRow> snapshot;
  if (t != nullptr) {
    snapshot = t->metrics().Snapshot();
    for (const obs::MetricRow& row : snapshot) {
      for (const auto& [k, v] : row.labels) {
        if (k == "rule") {
          std::string key = row.name;
          key.push_back('\0');
          key += v;
          by_rule.emplace(std::move(key), &row);
        }
      }
    }
  }
  auto rule_counter = [&](std::string_view name, size_t i) -> uint64_t {
    auto it = by_rule.find(RuleMetricKey(name, i));
    return it == by_rule.end() ? 0 : it->second->counter;
  };
  std::vector<std::string> rule_texts = last_rule_texts_;
  if (rule_texts.empty() && program_) {
    for (const Rule& rule : program_->rules()) {
      rule_texts.push_back(ToString(*ctx_, rule));
    }
  }
  w.Key("rules");
  w.BeginArray();
  for (size_t i = 0; i < rule_texts.size(); ++i) {
    w.BeginObject();
    w.Key("index");
    w.UInt(i);
    w.Key("text");
    w.String(rule_texts[i]);
    w.Key("derived");
    w.UInt(rule_counter("eval.rule.derived", i));
    w.Key("duplicates");
    w.UInt(rule_counter("eval.rule.duplicates", i));
    w.Key("firings");
    w.UInt(rule_counter("eval.rule.firings", i));
    w.Key("probes");
    w.UInt(rule_counter("eval.rule.probes", i));
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics");
  if (t != nullptr) {
    t->WriteMetricsJson(w);
  } else {
    w.BeginArray();
    w.EndArray();
  }
  w.Key("spans");
  if (t != nullptr) {
    t->WriteSpansJson(w);
  } else {
    w.BeginArray();
    w.EndArray();
  }
  w.Key("dropped_spans");
  w.UInt(t != nullptr ? t->trace().dropped() : 0);
  w.EndObject();
  out.push_back('\n');
  return out;
}

}  // namespace exdl
