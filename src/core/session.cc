#include "core/session.h"

#include <algorithm>
#include <unordered_map>

#include "ast/printer.h"
#include "obs/telemetry.h"

namespace exdl {

namespace {

/// Stable lowercase termination label for the JSON export.
std::string_view TerminationLabel(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    default: return "error";
  }
}

/// Snapshot lookup key: metric name + the value of its "rule" label (the
/// only label the per-rule metrics carry).
std::string RuleMetricKey(std::string_view name, size_t rule_index) {
  std::string key(name);
  key.push_back('\0');
  key += std::to_string(rule_index);
  return key;
}

}  // namespace

Status Session::ArmResume(recovery::Snapshot snap, const Program& program,
                          uint64_t fingerprint, std::string_view origin) {
  if (options_.eval.record_provenance) {
    return Status::FailedPrecondition(
        "cannot resume with record_provenance: derivations of completed "
        "rounds are not checkpointed");
  }
  if (snap.program_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint was written by a different program or evaluation "
        "options: " + std::string(origin));
  }
  // The snapshot's ids are only meaningful if this session's interning
  // tables — rebuilt by re-parsing and re-optimizing — are identical to
  // the writer's. The fingerprint already pinned the program text, so a
  // mismatch here means the snapshot was tampered with.
  const Context& ctx = *program.context();
  if (snap.symbols.size() != ctx.NumSymbols() ||
      snap.preds.size() != ctx.NumPredicates()) {
    return Status::CorruptCheckpoint(
        "snapshot interning tables disagree with the session context");
  }
  for (SymbolId s = 0; s < snap.symbols.size(); ++s) {
    if (snap.symbols[s] != ctx.SymbolName(s)) {
      return Status::CorruptCheckpoint(
          "snapshot symbol table disagrees with the session context");
    }
  }
  for (PredId p = 0; p < snap.preds.size(); ++p) {
    const PredicateInfo& info = ctx.predicate(p);
    const recovery::SnapshotPred& stored = snap.preds[p];
    if (stored.name != info.name || stored.arity != info.arity ||
        stored.adornment != info.adornment.str()) {
      return Status::CorruptCheckpoint(
          "snapshot predicate table disagrees with the session context");
    }
  }
  if (!snap.cursor.retired_rules.empty() &&
      snap.cursor.retired_rules.back() >= program.rules().size()) {
    return Status::CorruptCheckpoint(
        "snapshot retires a rule the program does not have");
  }
  resume_ = std::move(snap);
  return Status::Ok();
}

Result<EvalResult> Session::Run(const Program& program, const Database& edb) {
  if (!resume_.has_value()) return EvaluateInternal(program, edb, nullptr);
  Result<EvalResult> result =
      EvaluateInternal(program, resume_->db, &resume_->cursor);
  resume_.reset();
  return result;
}

Result<EvalResult> Session::Run(const Database& edb) {
  if (compiled_ == nullptr) {
    return Status::FailedPrecondition("session has no bound program");
  }
  return Run(compiled_->program(), edb);
}

Result<EvalResult> Session::Evaluate(const Program& program,
                                     const Database& edb) {
  return EvaluateInternal(program, edb, nullptr);
}

Result<EvalResult> Session::EvaluateInternal(const Program& program,
                                             const Database& edb,
                                             const EvalCursor* resume) {
  EvalOptions eval = options_.eval;
  if (eval.telemetry == nullptr) eval.telemetry = options_.telemetry;
  if (eval.telemetry != nullptr) {
    summary_.rule_texts.clear();
    for (const Rule& rule : program.rules()) {
      summary_.rule_texts.push_back(ToString(*program.context(), rule));
    }
  }
  if (!options_.checkpoint.directory.empty()) {
    // Rebuilt per evaluation: the fingerprint depends on the evaluated
    // program, which may have changed since the last Run().
    checkpointer_ = std::make_unique<recovery::Checkpointer>(
        options_.checkpoint.directory,
        CompiledProgram::Fingerprint(program, eval));
    eval.checkpoint_sink = checkpointer_.get();
    eval.checkpoint_every_rounds =
        std::max(1u, options_.checkpoint.every_rounds);
  }
  eval.resume = resume;
  Result<EvalResult> result = ::exdl::Evaluate(program, edb, eval);
  if (result.ok()) {
    summary_.has_run = true;
    summary_.stats = result->stats;
    summary_.answers = result->answers.size();
    summary_.termination = result->termination;
    summary_.representation = result->representation;
  }
  return result;
}

std::string RenderTelemetryDoc(
    std::string_view command, std::string_view source, const RunSummary& run,
    const std::vector<std::string>& rule_texts, bool optimized,
    const OptimizationReport& report, const Status& optimize_termination,
    const obs::Telemetry* telemetry,
    const std::function<void(obs::JsonWriter&)>& extra) {
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("generator");
  w.String("exdatalog");
  w.Key("command");
  w.String(command);
  w.Key("source");
  w.String(source);

  w.Key("answers");
  w.UInt(run.answers);
  w.Key("termination");
  w.String(TerminationLabel(!run.termination.ok() ? run.termination
                                                  : optimize_termination));
  w.Key("stats");
  w.BeginObject();
  w.Key("rounds");
  w.UInt(run.stats.rounds);
  w.Key("rule_firings");
  w.UInt(run.stats.rule_firings);
  w.Key("tuples_inserted");
  w.UInt(run.stats.tuples_inserted);
  w.Key("duplicate_inserts");
  w.UInt(run.stats.duplicate_inserts);
  w.Key("index_probes");
  w.UInt(run.stats.index_probes);
  w.Key("rows_matched");
  w.UInt(run.stats.rows_matched);
  w.Key("rules_retired");
  w.UInt(run.stats.rules_retired);
  w.Key("eval_seconds");
  w.Double(run.stats.eval_seconds);
  w.Key("max_round_seconds");
  w.Double(run.stats.max_round_seconds);
  w.Key("budget_tripped");
  w.String(BudgetKindName(run.stats.budget_tripped));
  w.EndObject();

  w.Key("optimize");
  w.BeginObject();
  w.Key("ran");
  w.Bool(optimized);
  w.Key("original_rules");
  w.UInt(report.original_rules);
  w.Key("final_rules");
  w.UInt(report.final_rules);
  w.Key("optimize_seconds");
  w.Double(report.optimize_seconds);
  w.Key("interrupted_before");
  w.String(report.interrupted_before);
  w.EndObject();

  w.Key("phases");
  w.BeginArray();
  for (const OptimizationPhase& phase : report.phases) {
    w.BeginObject();
    w.Key("name");
    w.String(phase.name);
    w.Key("seconds");
    w.Double(phase.seconds);
    w.Key("rules_before");
    w.UInt(phase.rules_before);
    w.Key("rules_after");
    w.UInt(phase.rules_after);
    w.Key("rule_delta");
    w.Int(phase.RuleDelta());
    w.Key("interrupted");
    w.Bool(phase.interrupted);
    w.Key("detail");
    w.String(phase.detail);
    w.EndObject();
  }
  w.EndArray();

  // Per-rule rows: rule text from the caller, counters from the metrics
  // snapshot (zero when telemetry is off or the rule never fired).
  std::unordered_map<std::string, const obs::MetricRow*> by_rule;
  std::vector<obs::MetricRow> snapshot;
  if (telemetry != nullptr) {
    snapshot = telemetry->metrics().Snapshot();
    for (const obs::MetricRow& row : snapshot) {
      for (const auto& [k, v] : row.labels) {
        if (k == "rule") {
          std::string key = row.name;
          key.push_back('\0');
          key += v;
          by_rule.emplace(std::move(key), &row);
        }
      }
    }
  }
  auto rule_counter = [&](std::string_view name, size_t i) -> uint64_t {
    auto it = by_rule.find(RuleMetricKey(name, i));
    return it == by_rule.end() ? 0 : it->second->counter;
  };
  w.Key("rules");
  w.BeginArray();
  for (size_t i = 0; i < rule_texts.size(); ++i) {
    w.BeginObject();
    w.Key("index");
    w.UInt(i);
    w.Key("text");
    w.String(rule_texts[i]);
    w.Key("derived");
    w.UInt(rule_counter("eval.rule.derived", i));
    w.Key("duplicates");
    w.UInt(rule_counter("eval.rule.duplicates", i));
    w.Key("firings");
    w.UInt(rule_counter("eval.rule.firings", i));
    w.Key("probes");
    w.UInt(rule_counter("eval.rule.probes", i));
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics");
  if (telemetry != nullptr) {
    telemetry->WriteMetricsJson(w);
  } else {
    w.BeginArray();
    w.EndArray();
  }
  w.Key("spans");
  if (telemetry != nullptr) {
    telemetry->WriteSpansJson(w);
  } else {
    w.BeginArray();
    w.EndArray();
  }
  w.Key("dropped_spans");
  w.UInt(telemetry != nullptr ? telemetry->trace().dropped() : 0);

  // Physical-representation counters (DESIGN.md §14). This is the only
  // section allowed to differ between tuple and bitset runs of the same
  // program; equivalence checks strip it before comparing documents.
  w.Key("storage");
  w.BeginObject();
  w.Key("representation");
  w.BeginObject();
  w.Key("mode");
  w.String(RepresentationName(run.representation.mode));
  w.Key("bitset_relations");
  w.UInt(run.representation.bitset_relations);
  w.Key("words_scanned");
  w.UInt(run.representation.words_scanned);
  w.Key("fallbacks");
  w.UInt(run.representation.fallbacks);
  w.EndObject();
  w.EndObject();
  if (extra) extra(w);
  w.EndObject();
  out.push_back('\n');
  return out;
}

}  // namespace exdl
