// Optimization report: what every phase of the pipeline did.

#ifndef EXDL_CORE_REPORT_H_
#define EXDL_CORE_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace exdl {

struct OptimizationReport {
  size_t original_rules = 0;
  size_t final_rules = 0;

  // Phase 0 — adornment (Section 2).
  bool adorned = false;
  size_t adorned_rules = 0;

  // Phase 2 — projection pushing (Section 3.2). (Numbered as in the
  // paper; this implementation runs it before component extraction, see
  // transform/components.h.)
  size_t predicates_projected = 0;
  size_t positions_dropped = 0;

  // Phase 1 — connected components (Section 3.1).
  size_t booleans_created = 0;
  size_t rules_split = 0;

  // Phase 3 — rule deletion (Sections 3.3 & 5).
  size_t unit_rules_added = 0;
  size_t unit_rules_retracted = 0;
  size_t deleted_by_subsumption = 0;
  size_t deleted_by_summary = 0;
  size_t deleted_by_sagiv = 0;
  size_t deleted_by_optimistic = 0;
  size_t removed_by_cleanup = 0;

  // Example 11 folding (optional phase).
  size_t rules_folded = 0;
  size_t bodies_folded = 0;
  size_t deleted_after_folding = 0;

  bool magic_applied = false;

  /// Wall-clock time spent inside OptimizeExistential.
  double optimize_seconds = 0;

  /// Non-empty when the pipeline was cancelled: names the first phase
  /// that did NOT run (everything before it completed normally).
  std::string interrupted_before;

  /// Per-deletion justifications and other notes, in order.
  std::vector<std::string> log;

  std::string ToString() const;
};

}  // namespace exdl

#endif  // EXDL_CORE_REPORT_H_
