// Optimization report: what every phase of the pipeline did.
//
// The report is structured: `phases` holds one entry per pipeline phase
// that was reached (in execution order), with timing, the rule-count
// delta, a human-readable detail line, and an interrupted flag for the
// phase a cancellation stopped in front of. ToString() renders purely
// from that structure (plus the summary counters below); the JSON
// telemetry export (DESIGN.md §10) emits the same entries as "phases"
// rows.

#ifndef EXDL_CORE_REPORT_H_
#define EXDL_CORE_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace exdl {

/// One executed (or interrupted) pipeline phase.
struct OptimizationPhase {
  /// Machine name, stable across releases: "adorn", "projection",
  /// "components", "unit_rules", "deletion", "folding", "cleanup",
  /// "magic". Trace spans are named "phase:<name>".
  std::string name;
  /// Wall-clock seconds inside the phase (0 for interrupted entries).
  double seconds = 0;
  size_t rules_before = 0;
  size_t rules_after = 0;
  /// True when cancellation stopped the pipeline before this phase ran;
  /// such an entry is always the last one and carries no timing.
  bool interrupted = false;
  /// Human-readable summary ("projection pushing: 1 predicate(s), ...");
  /// empty when the phase ran but had nothing to report.
  std::string detail;

  /// rules_after - rules_before (negative = rules removed).
  long long RuleDelta() const {
    return static_cast<long long>(rules_after) -
           static_cast<long long>(rules_before);
  }
};

struct OptimizationReport {
  size_t original_rules = 0;
  size_t final_rules = 0;

  /// Per-phase entries in execution order; see OptimizationPhase.
  std::vector<OptimizationPhase> phases;

  // Summary counters, aggregated across phases (kept flat for callers
  // that test a single quantity; the per-phase story lives in `phases`).

  // Phase 0 — adornment (Section 2).
  bool adorned = false;
  size_t adorned_rules = 0;

  // Phase 2 — projection pushing (Section 3.2). (Numbered as in the
  // paper; this implementation runs it before component extraction, see
  // transform/components.h.)
  size_t predicates_projected = 0;
  size_t positions_dropped = 0;

  // Phase 1 — connected components (Section 3.1).
  size_t booleans_created = 0;
  size_t rules_split = 0;

  // Phase 3 — rule deletion (Sections 3.3 & 5).
  size_t unit_rules_added = 0;
  size_t unit_rules_retracted = 0;
  size_t deleted_by_subsumption = 0;
  size_t deleted_by_summary = 0;
  size_t deleted_by_sagiv = 0;
  size_t deleted_by_optimistic = 0;
  size_t removed_by_cleanup = 0;

  // Example 11 folding (optional phase).
  size_t rules_folded = 0;
  size_t bodies_folded = 0;
  size_t deleted_after_folding = 0;

  bool magic_applied = false;

  /// Wall-clock time spent inside OptimizeExistential.
  double optimize_seconds = 0;

  /// Non-empty when the pipeline was cancelled: names the first phase
  /// that did NOT run (everything before it completed normally). The
  /// same phase is the `interrupted` entry at the back of `phases`.
  std::string interrupted_before;

  /// Per-deletion justifications and other notes, in order.
  std::vector<std::string> log;

  std::string ToString() const;
};

}  // namespace exdl

#endif  // EXDL_CORE_REPORT_H_
