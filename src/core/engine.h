// exdl::Engine — the compatibility facade over parse -> optimize -> run.
//
// API v2 (DESIGN.md §12) splits the old monolithic engine into
//   * CompiledProgram (core/compiled_program.h) — the immutable,
//     thread-shareable compile artifact, and
//   * Session (core/session.h) — one evaluation's worth of mutable state.
// Engine remains as the one-session convenience wrapper those pieces
// compose into: it owns the interning Context, the loaded program, the
// extensional database, the resource budget (via EngineOptions::eval
// .budget), and — when collect_telemetry is set — an obs::Telemetry sink
// threaded through every stage. Callers that used to hand-wire
// ParseProgram + OptimizeExistential + Evaluate (the CLI, the benches,
// the tests) go through this class unchanged:
//
//   Engine engine(options);
//   EXDL_RETURN_IF_ERROR(engine.LoadFile("tc.dl"));
//   EXDL_RETURN_IF_ERROR(engine.Optimize());          // optional
//   EXDL_ASSIGN_OR_RETURN(EvalResult result, engine.Run());
//   std::string json = engine.TelemetryJson("run", "tc.dl");
//
// Code that wants many concurrent evaluations of one program should use
// QueryService (src/service/) or compose CompiledProgram + Session
// directly instead of creating one Engine per query.
//
// Telemetry is strictly opt-in: with collect_telemetry == false the null
// sink is passed through, every instrumentation site is a never-taken
// branch, and answers/databases/stats are byte-identical to a pre-facade
// pipeline.

#ifndef EXDL_CORE_ENGINE_H_
#define EXDL_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/optimizer.h"
#include "core/session.h"
#include "eval/evaluator.h"
#include "obs/telemetry.h"
#include "recovery/checkpoint.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl {

struct EngineOptions {
  /// Optimizer pipeline configuration (used by Optimize()).
  OptimizerOptions optimizer;
  /// Evaluation configuration, including the EvalBudget (used by Run()).
  EvalOptions eval;
  /// When true the engine owns a Telemetry sink and threads it through
  /// Optimize() and Run(); TelemetryJson() renders it. When false (the
  /// default) no observability work happens anywhere. An externally owned
  /// sink already set on optimizer.telemetry / eval.telemetry wins over
  /// the engine-owned one.
  bool collect_telemetry = false;
  /// Round-boundary checkpointing of Run(); disabled when the directory
  /// is empty. (CheckpointOptions lives in core/session.h.)
  CheckpointOptions checkpoint;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses `source` (rules, query, and ground facts) into a fresh
  /// session, replacing any previously loaded one.
  Status LoadSource(std::string_view source);
  /// LoadSource over the contents of `path`.
  Status LoadFile(const std::string& path);
  /// Adopts an already-built program and EDB (shares the program's
  /// Context). Replaces any previously loaded session.
  Status LoadProgram(Program program, Database edb);

  /// Runs the optimizer pipeline and installs the optimized program (and,
  /// when magic was applied, inserts the seed fact into the EDB). Returns
  /// hard errors only; a phase-boundary cancellation installs the
  /// completed-prefix program and is reported via optimize_termination().
  Status Optimize();

  /// Evaluates the loaded (possibly optimized) program over the session
  /// EDB. The result also feeds TelemetryJson()'s summary rows. After a
  /// successful Resume() the next Run() continues the checkpointed
  /// fixpoint instead of starting over; relations and answers come out
  /// byte-identical to an uninterrupted run.
  Result<EvalResult> Run();

  /// Loads the snapshot at `checkpoint_path` and arms the next Run() to
  /// continue from it. The session must already hold the same program —
  /// loaded and optimized exactly as it was when the checkpoint was
  /// written; this is checked via the snapshot's program fingerprint
  /// (kFailedPrecondition on mismatch) and by comparing the snapshot's
  /// interning tables against the session context (kCorruptCheckpoint on
  /// mismatch). A malformed or truncated file yields kCorruptCheckpoint.
  Status Resume(const std::string& checkpoint_path);

  /// Fingerprint of the loaded program plus the evaluation semantics
  /// options that change the fixpoint, stamped into every checkpoint so a
  /// snapshot is never resumed against a different computation.
  /// Delegates to CompiledProgram::Fingerprint.
  uint64_t ProgramFingerprint() const;

  /// Session-less evaluation with this engine's options and telemetry
  /// sink, leaving the loaded program/EDB untouched. The benches use this
  /// to evaluate pre-built inputs without paying an extra Database clone.
  Result<EvalResult> Evaluate(const Program& program, const Database& edb);

  bool loaded() const { return program_.has_value(); }
  const ContextPtr& ctx() const { return ctx_; }
  const Program& program() const { return *program_; }
  const Database& edb() const { return edb_; }
  Database& mutable_edb() { return edb_; }

  /// Report of the last Optimize() (empty before that).
  const OptimizationReport& report() const { return report_; }
  /// OK, or kCancelled when Optimize() stopped at a phase boundary.
  const Status& optimize_termination() const { return optimize_termination_; }
  /// Seed fact of a magic-set rewrite (already inserted into the EDB).
  const std::optional<Atom>& magic_seed() const { return magic_seed_; }

  /// The active sink: engine-owned when collect_telemetry, else whatever
  /// the caller put into the options, else null.
  obs::Telemetry* telemetry();
  const obs::Telemetry* telemetry() const;

  /// Mutable access to the session options. Changes apply to subsequent
  /// Optimize()/Run() calls.
  EngineOptions& options() { return options_; }
  const EngineOptions& options() const { return options_; }

  /// Renders the stable machine-readable telemetry document described in
  /// DESIGN.md §10: schema_version, run summary (answers, termination,
  /// stats), per-phase optimizer rows, per-rule evaluation rows, the
  /// metrics snapshot, and the trace spans. `command` and `source` name
  /// the producing command and input for provenance; pass "" when not
  /// applicable. Valid (with empty metrics/spans) even with telemetry off.
  /// Delegates to RenderTelemetryDoc (core/session.h).
  std::string TelemetryJson(std::string_view command,
                            std::string_view source) const;

 private:
  /// Copies the engine's current options (and resolved telemetry sink)
  /// into the inner session before a delegated call.
  void SyncSession();

  EngineOptions options_;
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  /// The one inner session: run summary, armed resume, checkpoint writer.
  Session session_;
  ContextPtr ctx_;
  std::optional<Program> program_;
  Database edb_;

  OptimizationReport report_;
  Status optimize_termination_;
  std::optional<Atom> magic_seed_;
  bool optimized_ = false;
};

}  // namespace exdl

#endif  // EXDL_CORE_ENGINE_H_
