#include "core/optimizer.h"

#include <algorithm>
#include <chrono>

#include "adorn/adorn.h"
#include "obs/telemetry.h"
#include "transform/cleanup.h"
#include "transform/folding.h"
#include "transform/components.h"
#include "transform/magic.h"
#include "transform/projection.h"
#include "transform/unit_rules.h"

namespace exdl {

namespace {

using Clock = std::chrono::steady_clock;

/// Bookkeeping shared by every phase: structured report entry, trace span,
/// and timing. Created by Optimizer::BeginPhase, closed by EndPhase.
struct PhaseScope {
  size_t entry = 0;  ///< Index into report.phases.
  Clock::time_point begin;
  obs::SpanId span = obs::kDroppedSpan;
  bool open = false;
};

}  // namespace

Result<OptimizedProgram> OptimizeExistential(const Program& program,
                                             const OptimizerOptions& options) {
  if (!program.query()) {
    return Status::FailedPrecondition("optimizer requires a query");
  }
  const auto optimize_begin = Clock::now();
  OptimizedProgram out{program.Clone(), std::nullopt, {}, Status::Ok()};
  out.report.original_rules = program.NumRules();
  std::unordered_set<PredId> input_preds = program.EdbPredicates();

  obs::Telemetry* telemetry = options.telemetry;
  obs::SpanId optimize_span = obs::kDroppedSpan;
  if (telemetry != nullptr) {
    optimize_span = telemetry->trace().Begin("optimize");
  }

  auto begin_phase = [&](const char* name) {
    PhaseScope scope;
    scope.entry = out.report.phases.size();
    OptimizationPhase entry;
    entry.name = name;
    entry.rules_before = out.program.NumRules();
    out.report.phases.push_back(std::move(entry));
    scope.begin = Clock::now();
    if (telemetry != nullptr) {
      scope.span = telemetry->trace().Begin(std::string("phase:") + name);
    }
    scope.open = true;
    return scope;
  };
  auto end_phase = [&](PhaseScope& scope, std::string detail = "") {
    OptimizationPhase& entry = out.report.phases[scope.entry];
    entry.rules_after = out.program.NumRules();
    entry.seconds =
        std::chrono::duration<double>(Clock::now() - scope.begin).count();
    entry.detail = std::move(detail);
    if (telemetry != nullptr) {
      obs::Trace& trace = telemetry->trace();
      trace.SetAttr(scope.span, "rules_before",
                    static_cast<double>(entry.rules_before));
      trace.SetAttr(scope.span, "rules_after",
                    static_cast<double>(entry.rules_after));
      trace.End(scope.span);
    }
    scope.open = false;
  };

  // Phase-boundary cancellation. Every phase preserves equivalence, so the
  // prefix completed so far is a valid optimization result; finalize the
  // report and hand it back with termination = kCancelled.
  auto finalize = [&out, optimize_begin, telemetry, optimize_span] {
    out.report.final_rules = out.program.NumRules();
    out.report.optimize_seconds =
        std::chrono::duration<double>(Clock::now() - optimize_begin).count();
    // Detail lines whose numbers only settle at the end of the pipeline
    // (retraction count, cleanup totals) are patched into their entries
    // here so the printed per-phase lines always show final values.
    const OptimizationReport& r = out.report;
    for (OptimizationPhase& phase : out.report.phases) {
      if (phase.name == "unit_rules" && r.unit_rules_added > 0) {
        phase.detail = "covering unit rules added: " +
                       std::to_string(r.unit_rules_added) +
                       " (retracted afterwards: " +
                       std::to_string(r.unit_rules_retracted) + ")";
      }
      if (phase.name == "deletion") {
        size_t deleted = r.deleted_by_subsumption + r.deleted_by_summary +
                         r.deleted_by_sagiv + r.deleted_by_optimistic;
        if (deleted > 0 || r.removed_by_cleanup > 0) {
          phase.detail =
              "rule deletion: " + std::to_string(r.deleted_by_subsumption) +
              " by subsumption, " + std::to_string(r.deleted_by_summary) +
              " by summaries, " + std::to_string(r.deleted_by_sagiv) +
              " by Sagiv UE, " + std::to_string(r.deleted_by_optimistic) +
              " by optimistic UQE, " + std::to_string(r.removed_by_cleanup) +
              " dead rules cleaned up";
        }
      }
    }
    if (telemetry != nullptr) {
      obs::MetricsRegistry& m = telemetry->metrics();
      m.Add(m.Counter("optimize.rules_deleted"),
            r.deleted_by_subsumption + r.deleted_by_summary +
                r.deleted_by_sagiv + r.deleted_by_optimistic +
                r.removed_by_cleanup);
      m.Add(m.Counter("optimize.positions_dropped"), r.positions_dropped);
      m.Add(m.Counter("optimize.booleans_created"), r.booleans_created);
      m.Add(m.Counter("optimize.unit_rules_added"), r.unit_rules_added);
      m.Set(m.Gauge("optimize.final_rules"),
            static_cast<double>(r.final_rules));
      telemetry->trace().End(optimize_span);
    }
  };
  auto cancelled_before = [&](const char* phase) {
    if (options.cancellation == nullptr || !options.cancellation->cancelled()) {
      return false;
    }
    out.report.interrupted_before = phase;
    OptimizationPhase entry;
    entry.name = phase;
    entry.rules_before = entry.rules_after = out.program.NumRules();
    entry.interrupted = true;
    out.report.phases.push_back(std::move(entry));
    if (telemetry != nullptr) {
      telemetry->trace().Event(std::string("event:cancelled_before:") +
                               phase);
    }
    out.termination = Status::Cancelled(
        std::string("optimizer cancelled before phase: ") + phase);
    finalize();
    return true;
  };

  if (cancelled_before("adorn")) return out;
  if (options.adorn && program.IsIdb(program.query()->pred)) {
    PhaseScope phase = begin_phase("adorn");
    EXDL_ASSIGN_OR_RETURN(out.program, AdornExistential(out.program));
    out.report.adorned = true;
    out.report.adorned_rules = out.program.NumRules();
    end_phase(phase, "adorned program: " +
                         std::to_string(out.report.adorned_rules) + " rules");
  }

  if (cancelled_before("projection")) return out;
  if (options.push_projections) {
    PhaseScope phase = begin_phase("projection");
    EXDL_ASSIGN_OR_RETURN(ProjectionResult projected,
                          PushProjections(out.program));
    out.report.predicates_projected = projected.predicates_projected;
    out.report.positions_dropped = projected.positions_dropped;
    out.program = std::move(projected.program);
    std::string detail;
    if (out.report.predicates_projected > 0) {
      detail = "projection pushing: " +
               std::to_string(out.report.predicates_projected) +
               " predicate(s), " +
               std::to_string(out.report.positions_dropped) +
               " argument position(s) dropped";
    }
    end_phase(phase, std::move(detail));
  }

  if (cancelled_before("components")) return out;
  if (options.extract_components) {
    PhaseScope phase = begin_phase("components");
    EXDL_ASSIGN_OR_RETURN(ComponentResult components,
                          ExtractComponents(out.program));
    out.report.booleans_created = components.booleans_created;
    out.report.rules_split = components.rules_split;
    out.program = std::move(components.program);
    std::string detail;
    if (out.report.booleans_created > 0) {
      detail = "existential components: " +
               std::to_string(out.report.booleans_created) +
               " boolean subquery(ies) extracted from " +
               std::to_string(out.report.rules_split) + " rule(s)";
    }
    end_phase(phase, std::move(detail));
  }

  if (cancelled_before("unit_rules")) return out;
  const bool has_negation = out.program.HasNegation();
  std::vector<Rule> added_unit_rules;
  if (options.add_unit_rules && options.delete_rules && !has_negation) {
    PhaseScope phase = begin_phase("unit_rules");
    EXDL_ASSIGN_OR_RETURN(UnitRuleResult units,
                          AddCoveringUnitRules(out.program));
    out.report.unit_rules_added = units.rules_added;
    added_unit_rules = std::move(units.added);
    out.program = std::move(units.program);
    end_phase(phase);  // detail patched in finalize (needs retraction count)
  }

  if (cancelled_before("deletion")) return out;
  std::vector<Rule> justification_rules;
  bool retraction_safe = true;
  if (options.delete_rules) {
    PhaseScope phase = begin_phase("deletion");
    DeletionOptions deletion = options.deletion;
    deletion.input_preds = input_preds;
    EXDL_ASSIGN_OR_RETURN(DeletionResult deleted,
                          DeleteRedundantRules(out.program, deletion));
    out.report.deleted_by_subsumption = deleted.deleted_by_subsumption;
    out.report.deleted_by_summary = deleted.deleted_by_summary;
    out.report.deleted_by_sagiv = deleted.deleted_by_sagiv;
    out.report.deleted_by_optimistic = deleted.deleted_by_optimistic;
    out.report.removed_by_cleanup = deleted.removed_by_cleanup;
    out.report.log = std::move(deleted.log);
    justification_rules = std::move(deleted.justification_rules);
    // Sagiv/optimistic deletions do not report which rules their
    // re-derivations use, so retraction is only safe without them.
    retraction_safe = deleted.deleted_by_sagiv == 0 &&
                      deleted.deleted_by_optimistic == 0;
    out.program = std::move(deleted.program);
    end_phase(phase);  // detail patched in finalize (cleanup totals settle)
  }

  // Retract surviving added unit rules that no deletion leaned on: they
  // only copy tuples between predicate versions, so a load-free one would
  // cost evaluation work the original program never paid. Replaying the
  // deletion sequence without an unused unit rule reaches the same (or a
  // smaller dead-rule) result, so removal preserves equivalence.
  for (const Rule& unit : added_unit_rules) {
    if (!retraction_safe) break;
    if (std::find(justification_rules.begin(), justification_rules.end(),
                  unit) != justification_rules.end()) {
      continue;
    }
    auto& rules = out.program.mutable_rules();
    auto it = std::find(rules.begin(), rules.end(), unit);
    if (it == rules.end()) continue;
    rules.erase(it);
    ++out.report.unit_rules_retracted;
  }
  if (cancelled_before("folding")) return out;
  if (options.enable_folding && options.delete_rules && !has_negation) {
    PhaseScope phase = begin_phase("folding");
    EXDL_ASSIGN_OR_RETURN(FoldingResult folded,
                          FoldAlmostUnitRules(out.program));
    out.report.rules_folded = folded.rules_folded;
    out.report.bodies_folded = folded.bodies_folded;
    if (folded.rules_folded > 0) {
      DeletionOptions deletion = options.deletion;
      deletion.input_preds = input_preds;
      EXDL_ASSIGN_OR_RETURN(DeletionResult deleted,
                            DeleteRedundantRules(folded.program, deletion));
      out.report.deleted_after_folding = deleted.deleted_by_summary +
                                         deleted.deleted_by_sagiv +
                                         deleted.deleted_by_optimistic;
      out.report.removed_by_cleanup += deleted.removed_by_cleanup;
      for (std::string& line : deleted.log) {
        out.report.log.push_back(std::move(line));
      }
      EXDL_ASSIGN_OR_RETURN(
          out.program,
          UnfoldAuxiliaries(deleted.program, folded.aux_preds));
    }
    std::string detail;
    if (out.report.rules_folded > 0) {
      detail = "folding (Example 11): " +
               std::to_string(out.report.rules_folded) + " rule(s) folded, " +
               std::to_string(out.report.bodies_folded) +
               " embedded body(ies) rewritten, " +
               std::to_string(out.report.deleted_after_folding) +
               " additional deletion(s)";
    }
    end_phase(phase, std::move(detail));
  }
  if (cancelled_before("cleanup")) return out;
  if (options.delete_rules && options.deletion.cleanup && !has_negation) {
    PhaseScope phase = begin_phase("cleanup");
    EXDL_ASSIGN_OR_RETURN(CleanupResult cleaned,
                          CleanupProgram(out.program, input_preds));
    out.report.removed_by_cleanup += cleaned.rules_removed;
    out.program = std::move(cleaned.program);
    end_phase(phase);  // its count folds into the deletion summary line
  }

  if (cancelled_before("magic")) return out;
  if (options.apply_magic) {
    PhaseScope phase = begin_phase("magic");
    EXDL_ASSIGN_OR_RETURN(MagicResult magic, MagicRewrite(out.program));
    out.program = std::move(magic.program);
    out.magic_seed = std::move(magic.seed_fact);
    out.report.magic_applied = true;
    end_phase(phase, "magic-set rewriting applied");
  }

  finalize();
  return out;
}

}  // namespace exdl
