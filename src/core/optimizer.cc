#include "core/optimizer.h"

#include <algorithm>
#include <chrono>

#include "adorn/adorn.h"
#include "transform/cleanup.h"
#include "transform/folding.h"
#include "transform/components.h"
#include "transform/magic.h"
#include "transform/projection.h"
#include "transform/unit_rules.h"

namespace exdl {

Result<OptimizedProgram> OptimizeExistential(const Program& program,
                                             const OptimizerOptions& options) {
  if (!program.query()) {
    return Status::FailedPrecondition("optimizer requires a query");
  }
  const auto optimize_begin = std::chrono::steady_clock::now();
  OptimizedProgram out{program.Clone(), std::nullopt, {}, Status::Ok()};
  out.report.original_rules = program.NumRules();
  std::unordered_set<PredId> input_preds = program.EdbPredicates();

  // Phase-boundary cancellation. Every phase preserves equivalence, so the
  // prefix completed so far is a valid optimization result; finalize the
  // report and hand it back with termination = kCancelled.
  auto finalize = [&out, optimize_begin] {
    out.report.final_rules = out.program.NumRules();
    out.report.optimize_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      optimize_begin)
            .count();
  };
  auto cancelled_before = [&](const char* phase) {
    if (options.cancellation == nullptr || !options.cancellation->cancelled()) {
      return false;
    }
    out.report.interrupted_before = phase;
    out.termination = Status::Cancelled(
        std::string("optimizer cancelled before phase: ") + phase);
    finalize();
    return true;
  };

  if (cancelled_before("adorn")) return out;
  if (options.adorn && program.IsIdb(program.query()->pred)) {
    EXDL_ASSIGN_OR_RETURN(out.program, AdornExistential(out.program));
    out.report.adorned = true;
    out.report.adorned_rules = out.program.NumRules();
  }

  if (cancelled_before("push_projections")) return out;
  if (options.push_projections) {
    EXDL_ASSIGN_OR_RETURN(ProjectionResult projected,
                          PushProjections(out.program));
    out.report.predicates_projected = projected.predicates_projected;
    out.report.positions_dropped = projected.positions_dropped;
    out.program = std::move(projected.program);
  }

  if (cancelled_before("extract_components")) return out;
  if (options.extract_components) {
    EXDL_ASSIGN_OR_RETURN(ComponentResult components,
                          ExtractComponents(out.program));
    out.report.booleans_created = components.booleans_created;
    out.report.rules_split = components.rules_split;
    out.program = std::move(components.program);
  }

  if (cancelled_before("add_unit_rules")) return out;
  const bool has_negation = out.program.HasNegation();
  std::vector<Rule> added_unit_rules;
  if (options.add_unit_rules && options.delete_rules && !has_negation) {
    EXDL_ASSIGN_OR_RETURN(UnitRuleResult units,
                          AddCoveringUnitRules(out.program));
    out.report.unit_rules_added = units.rules_added;
    added_unit_rules = std::move(units.added);
    out.program = std::move(units.program);
  }

  if (cancelled_before("delete_rules")) return out;
  std::vector<Rule> justification_rules;
  bool retraction_safe = true;
  if (options.delete_rules) {
    DeletionOptions deletion = options.deletion;
    deletion.input_preds = input_preds;
    EXDL_ASSIGN_OR_RETURN(DeletionResult deleted,
                          DeleteRedundantRules(out.program, deletion));
    out.report.deleted_by_subsumption = deleted.deleted_by_subsumption;
    out.report.deleted_by_summary = deleted.deleted_by_summary;
    out.report.deleted_by_sagiv = deleted.deleted_by_sagiv;
    out.report.deleted_by_optimistic = deleted.deleted_by_optimistic;
    out.report.removed_by_cleanup = deleted.removed_by_cleanup;
    out.report.log = std::move(deleted.log);
    justification_rules = std::move(deleted.justification_rules);
    // Sagiv/optimistic deletions do not report which rules their
    // re-derivations use, so retraction is only safe without them.
    retraction_safe = deleted.deleted_by_sagiv == 0 &&
                      deleted.deleted_by_optimistic == 0;
    out.program = std::move(deleted.program);
  }

  // Retract surviving added unit rules that no deletion leaned on: they
  // only copy tuples between predicate versions, so a load-free one would
  // cost evaluation work the original program never paid. Replaying the
  // deletion sequence without an unused unit rule reaches the same (or a
  // smaller dead-rule) result, so removal preserves equivalence.
  for (const Rule& unit : added_unit_rules) {
    if (!retraction_safe) break;
    if (std::find(justification_rules.begin(), justification_rules.end(),
                  unit) != justification_rules.end()) {
      continue;
    }
    auto& rules = out.program.mutable_rules();
    auto it = std::find(rules.begin(), rules.end(), unit);
    if (it == rules.end()) continue;
    rules.erase(it);
    ++out.report.unit_rules_retracted;
  }
  if (cancelled_before("folding")) return out;
  if (options.enable_folding && options.delete_rules && !has_negation) {
    EXDL_ASSIGN_OR_RETURN(FoldingResult folded,
                          FoldAlmostUnitRules(out.program));
    out.report.rules_folded = folded.rules_folded;
    out.report.bodies_folded = folded.bodies_folded;
    if (folded.rules_folded > 0) {
      DeletionOptions deletion = options.deletion;
      deletion.input_preds = input_preds;
      EXDL_ASSIGN_OR_RETURN(DeletionResult deleted,
                            DeleteRedundantRules(folded.program, deletion));
      out.report.deleted_after_folding = deleted.deleted_by_summary +
                                         deleted.deleted_by_sagiv +
                                         deleted.deleted_by_optimistic;
      out.report.removed_by_cleanup += deleted.removed_by_cleanup;
      for (std::string& line : deleted.log) {
        out.report.log.push_back(std::move(line));
      }
      EXDL_ASSIGN_OR_RETURN(
          out.program,
          UnfoldAuxiliaries(deleted.program, folded.aux_preds));
    }
  }
  if (cancelled_before("cleanup")) return out;
  if (options.delete_rules && options.deletion.cleanup && !has_negation) {
    EXDL_ASSIGN_OR_RETURN(CleanupResult cleaned,
                          CleanupProgram(out.program, input_preds));
    out.report.removed_by_cleanup += cleaned.rules_removed;
    out.program = std::move(cleaned.program);
  }

  if (cancelled_before("magic")) return out;
  if (options.apply_magic) {
    EXDL_ASSIGN_OR_RETURN(MagicResult magic, MagicRewrite(out.program));
    out.program = std::move(magic.program);
    out.magic_seed = std::move(magic.seed_fact);
    out.report.magic_applied = true;
  }

  finalize();
  return out;
}

}  // namespace exdl
