#include "core/report.h"

#include <cstdio>

namespace exdl {

std::string OptimizationReport::ToString() const {
  std::string out;
  out += "rules: " + std::to_string(original_rules) + " -> " +
         std::to_string(final_rules) + "\n";
  // Per-phase lines render straight from the structured entries; an
  // entry with no detail produced no observable change.
  for (const OptimizationPhase& phase : phases) {
    if (phase.interrupted) {
      out += "pipeline cancelled before phase: " + phase.name +
             " (program reflects the completed phases)\n";
      continue;
    }
    if (!phase.detail.empty()) out += phase.detail + "\n";
  }
  if (optimize_seconds > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "optimizer wall time: %.3f ms\n",
                  optimize_seconds * 1e3);
    out += buf;
  }
  for (const std::string& line : log) {
    out += "  " + line + "\n";
  }
  return out;
}

}  // namespace exdl
