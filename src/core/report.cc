#include "core/report.h"

#include <cstdio>

namespace exdl {

std::string OptimizationReport::ToString() const {
  std::string out;
  out += "rules: " + std::to_string(original_rules) + " -> " +
         std::to_string(final_rules) + "\n";
  if (adorned) {
    out += "adorned program: " + std::to_string(adorned_rules) + " rules\n";
  }
  if (predicates_projected > 0) {
    out += "projection pushing: " + std::to_string(predicates_projected) +
           " predicate(s), " + std::to_string(positions_dropped) +
           " argument position(s) dropped\n";
  }
  if (booleans_created > 0) {
    out += "existential components: " + std::to_string(booleans_created) +
           " boolean subquery(ies) extracted from " +
           std::to_string(rules_split) + " rule(s)\n";
  }
  if (unit_rules_added > 0) {
    out += "covering unit rules added: " + std::to_string(unit_rules_added) +
           " (retracted afterwards: " +
           std::to_string(unit_rules_retracted) + ")\n";
  }
  size_t deleted = deleted_by_subsumption + deleted_by_summary +
                   deleted_by_sagiv + deleted_by_optimistic;
  if (deleted > 0 || removed_by_cleanup > 0) {
    out += "rule deletion: " + std::to_string(deleted_by_subsumption) +
           " by subsumption, " + std::to_string(deleted_by_summary) +
           " by summaries, " + std::to_string(deleted_by_sagiv) +
           " by Sagiv UE, " + std::to_string(deleted_by_optimistic) +
           " by optimistic UQE, " + std::to_string(removed_by_cleanup) +
           " dead rules cleaned up\n";
  }
  if (rules_folded > 0) {
    out += "folding (Example 11): " + std::to_string(rules_folded) +
           " rule(s) folded, " + std::to_string(bodies_folded) +
           " embedded body(ies) rewritten, " +
           std::to_string(deleted_after_folding) +
           " additional deletion(s)\n";
  }
  if (magic_applied) out += "magic-set rewriting applied\n";
  if (!interrupted_before.empty()) {
    out += "pipeline cancelled before phase: " + interrupted_before +
           " (program reflects the completed phases)\n";
  }
  if (optimize_seconds > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "optimizer wall time: %.3f ms\n",
                  optimize_seconds * 1e3);
    out += buf;
  }
  for (const std::string& line : log) {
    out += "  " + line + "\n";
  }
  return out;
}

}  // namespace exdl
