// Session — one evaluation's worth of mutable state (API v2, DESIGN.md
// §12). Where CompiledProgram is the immutable, shareable artifact of
// parse -> optimize, a Session owns everything a single evaluation
// mutates: the run summary, the armed resume snapshot, the checkpoint
// writer, and a private copy of the evaluation options. Many sessions
// evaluate the same CompiledProgram concurrently without sharing any of
// this — the query service creates one Session per in-flight query;
// Engine (the compatibility facade) keeps exactly one.
//
// A session evaluates in one of two modes:
//   * borrowed — Run(program, edb): caller keeps ownership of both. The
//     facade and the benches use this to avoid per-iteration clones.
//   * bound — Bind(compiled) then Run(edb): the session holds a
//     shared_ptr that keeps the artifact (and its Context) alive.

#ifndef EXDL_CORE_SESSION_H_
#define EXDL_CORE_SESSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiled_program.h"
#include "eval/evaluator.h"
#include "obs/json_writer.h"
#include "recovery/checkpoint.h"
#include "util/status.h"

namespace exdl {

namespace obs {
class Telemetry;
}  // namespace obs

/// Durable checkpointing of Run() (DESIGN.md §11). With a non-empty
/// directory the session writes `<directory>/checkpoint.exdl` atomically
/// every `every_rounds` completed fixpoint rounds; an armed resume picks
/// the latest one back up. With the directory empty (the default) no
/// checkpoint code runs anywhere.
struct CheckpointOptions {
  std::string directory;
  uint32_t every_rounds = 1;
};

/// Summary of a session's last successful evaluation — the inputs of the
/// telemetry document's top-level rows. The query service aggregates one
/// of these across all queries of a batch.
struct RunSummary {
  bool has_run = false;
  EvalStats stats;
  size_t answers = 0;
  Status termination;
  /// Representation counters of the run (DESIGN.md §14); the one summary
  /// row that is allowed to differ between tuple and bitset runs of the
  /// same program. Rendered as the telemetry document's top-level
  /// "storage" object.
  RepresentationStats representation;
  /// Rule texts captured at evaluation time (telemetry-enabled runs only),
  /// so per-rule export rows label themselves even for borrowed-mode
  /// evaluation of a program the caller has since dropped.
  std::vector<std::string> rule_texts;
};

struct SessionOptions {
  /// Evaluation configuration, including the EvalBudget. Owned by value —
  /// sessions never contend through shared options.
  EvalOptions eval;
  /// Round-boundary checkpointing; disabled when the directory is empty.
  CheckpointOptions checkpoint;
  /// Observability sink for this session; borrowed, may be null.
  obs::Telemetry* telemetry = nullptr;
};

class Session {
 public:
  Session() = default;
  explicit Session(SessionOptions options) : options_(std::move(options)) {}

  /// Binds the session to a shared compiled artifact; the Ptr keeps it
  /// (and its Context) alive for the session's lifetime.
  void Bind(CompiledProgram::Ptr compiled) { compiled_ = std::move(compiled); }
  const CompiledProgram::Ptr& compiled() const { return compiled_; }

  SessionOptions& options() { return options_; }
  const SessionOptions& options() const { return options_; }

  /// Validates `snap` against the session's program — `fingerprint` must
  /// be CompiledProgram::Fingerprint of (program, this session's eval
  /// semantics) — and arms the next Run() to continue from it.
  /// kFailedPrecondition on a fingerprint mismatch, kCorruptCheckpoint
  /// when the snapshot's interning tables disagree with the program's
  /// context. `origin` names the snapshot in error messages.
  Status ArmResume(recovery::Snapshot snap, const Program& program,
                   uint64_t fingerprint, std::string_view origin);
  bool resume_armed() const { return resume_.has_value(); }

  /// Evaluates `program` over `edb`, or — when a resume is armed — over
  /// the snapshot's database from its cursor. The resume is consumed
  /// either way: a failed resumed run must not silently turn a later
  /// Run() into another resume attempt.
  Result<EvalResult> Run(const Program& program, const Database& edb);

  /// Bound-mode Run: evaluates the bound compiled program over `edb`.
  Result<EvalResult> Run(const Database& edb);

  /// Plain evaluation that ignores (and preserves) an armed resume.
  Result<EvalResult> Evaluate(const Program& program, const Database& edb);

  /// Summary of the last successful Run()/Evaluate().
  const RunSummary& summary() const { return summary_; }

 private:
  Result<EvalResult> EvaluateInternal(const Program& program,
                                      const Database& edb,
                                      const EvalCursor* resume);

  SessionOptions options_;
  CompiledProgram::Ptr compiled_;
  std::unique_ptr<recovery::Checkpointer> checkpointer_;
  /// Snapshot armed by ArmResume(), consumed by the next Run().
  std::optional<recovery::Snapshot> resume_;
  RunSummary summary_;
};

/// Renders the stable machine-readable telemetry document of DESIGN.md
/// §10 from its parts: the run summary, per-rule texts, the optimizer
/// report, and the (nullable) telemetry sink. Engine::TelemetryJson and
/// QueryService::MetricsJson are both thin wrappers over this — one
/// renderer, one schema. When `extra` is set it is invoked right before
/// the document closes to append producer-specific keys (the service's
/// "service" object); the schema validator accepts unknown keys.
std::string RenderTelemetryDoc(
    std::string_view command, std::string_view source, const RunSummary& run,
    const std::vector<std::string>& rule_texts, bool optimized,
    const OptimizationReport& report, const Status& optimize_termination,
    const obs::Telemetry* telemetry,
    const std::function<void(obs::JsonWriter&)>& extra = {});

}  // namespace exdl

#endif  // EXDL_CORE_SESSION_H_
