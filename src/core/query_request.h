// QueryRequest — the one request object every submission surface speaks
// (DESIGN.md §12, API v2).
//
// The service, the daemon's SUBMIT frame, and the CLI all grew their own
// parameter lists for the same logical ask: "evaluate this source with
// these knobs". This struct collapses them. A request is plain data —
// buildable field-by-field, aggregate-initializable at call sites that
// only need `{source, name}` — and flows unchanged from the wire (or the
// CLI flag parser) down to QueryService::Submit and into
// CompiledProgram::CacheKeyMaterial, so a knob added here is
// automatically part of the cache key discussion instead of a new
// parameter threaded through four layers.
//
// Field order is append-only: existing aggregate initializers like
// `QueryRequest{source, name}` must keep meaning what they meant.

#ifndef EXDL_CORE_QUERY_REQUEST_H_
#define EXDL_CORE_QUERY_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>

#include "eval/evaluator.h"
#include "util/cancellation.h"

namespace exdl {

struct QueryRequest {
  /// Full query source: rules, query, and (optional) ground facts, which
  /// are evaluated on top of the service's current EDB snapshot.
  std::string source;
  /// Provenance label (file name) echoed into the response and telemetry.
  std::string name;
  /// Per-request budget override. When set it replaces the service-template
  /// budget for this query (the daemon's admission control resolves the
  /// client ask against the tenant policy and passes the clamped result
  /// here). EXDL_BUDGET_* environment variables still fill limits the
  /// override leaves at zero.
  std::optional<EvalBudget> budget;
  /// Optional per-request cancellation, merged into the session budget.
  /// Borrowed: must stay alive until the ticket's response is produced
  /// (the daemon cancels abandoned queries through this on client
  /// disconnect). Overrides any token in `budget`.
  CancellationToken* cancellation = nullptr;
  /// Per-request physical representation override (DESIGN.md §14). When
  /// set it replaces the service template's mode for this query — and
  /// feeds the program-cache key, so a kTuple request never receives an
  /// artifact compiled for kBitset telemetry.
  std::optional<Representation> representation;
  /// Admission-control identity the request was admitted under; "" means
  /// the default quota. The daemon stamps this from the connection's
  /// HELLO — the service records it for observability only and applies no
  /// policy of its own.
  std::string tenant;
  /// Round-boundary checkpointing for this evaluation (DESIGN.md §11):
  /// when non-empty, the session checkpoints into this directory every
  /// `checkpoint_every_rounds` rounds. Flat fields rather than a
  /// CheckpointOptions so the wire and CLI layers need no session.h.
  std::string checkpoint_directory;
  uint32_t checkpoint_every_rounds = 1;
  /// Register the query as a standing query (DESIGN.md §16): after this
  /// evaluation completes it is installed as a materialized view that
  /// LoadFacts maintains incrementally across generations. Submitted
  /// through QueryService::RegisterStandingQuery, which returns the
  /// standing id for PollStandingQuery.
  bool standing = false;
};

}  // namespace exdl

#endif  // EXDL_CORE_QUERY_REQUEST_H_
