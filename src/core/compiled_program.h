// CompiledProgram — the immutable, thread-shareable compile artifact of
// the parse -> optimize pipeline (DESIGN.md §12, "API v2").
//
// The paper's whole optimization pipeline (adornment -> boolean subqueries
// -> projection pushing -> rule deletion, §2–§3.3) is a compile-time
// transformation: the rewritten program depends only on the source text
// and the compile options, never on the data. A CompiledProgram captures
// that artifact once — parsed program, parsed facts, optimization report,
// magic seed, and the program/semantics fingerprint — and is then shared
// by value (shared_ptr<const CompiledProgram>) across any number of
// concurrent sessions. After construction nothing in it mutates, so no
// locking is needed to evaluate the same compiled program from many
// threads (the interning Context it references is internally
// synchronized; see context.h).
//
// ProgramCache (src/service/) caches these by CacheKey so a warm service
// skips re-parse and re-optimize entirely.

#ifndef EXDL_CORE_COMPILED_PROGRAM_H_
#define EXDL_CORE_COMPILED_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/optimizer.h"
#include "eval/evaluator.h"
#include "storage/database.h"
#include "util/status.h"

namespace exdl {

namespace obs {
class Telemetry;
}  // namespace obs

struct QueryRequest;

/// Everything that determines the compile artifact (and therefore the
/// cache key): the optimizer pipeline toggles, whether it runs at all,
/// and the evaluation semantics the fingerprint binds to.
struct CompileOptions {
  /// Optimizer pipeline configuration; used only when `optimize` is set.
  OptimizerOptions optimizer;
  /// Run the optimizer pipeline as part of compilation. When false the
  /// artifact is the parsed program as written.
  bool optimize = false;
  /// Evaluation semantics stamped into the fingerprint — a checkpoint or
  /// cache entry produced under semi-naive+cut must never be reused for a
  /// naive or cut-free evaluation of the same text.
  bool seminaive = true;
  bool boolean_cut = true;
  /// Physical representation the artifact's evaluations will request
  /// (DESIGN.md §14). Not part of the Fingerprint — answers and
  /// checkpoints are representation-independent by contract — but part
  /// of the cache key, so a service configured per-representation never
  /// hands a cached artifact to a session expecting the other mode's
  /// telemetry.
  Representation representation = Representation::kAuto;
};

class CompiledProgram {
 public:
  using Ptr = std::shared_ptr<const CompiledProgram>;

  /// Parses `source` (rules, query, ground facts) and — when
  /// options.optimize — runs the optimizer pipeline, producing the
  /// immutable artifact. Interns into `ctx` when given (the service's
  /// shared context) or a fresh context otherwise. `telemetry` is
  /// borrowed and only read during this call (optimizer phase spans).
  static Result<Ptr> Compile(std::string_view source,
                             const CompileOptions& options,
                             obs::Telemetry* telemetry = nullptr,
                             ContextPtr ctx = nullptr);

  /// Wraps an already-built program (shares its Context). `facts` are the
  /// program's ground facts, if the caller separated any.
  static Result<Ptr> FromProgram(Program program, Database facts,
                                 const CompileOptions& options = {},
                                 obs::Telemetry* telemetry = nullptr);

  /// Re-optimizes `base` under `options`, producing a new artifact that
  /// shares base's Context. base's facts carry over, with the magic seed
  /// (if the rewrite produced one) inserted.
  static Result<Ptr> Optimize(const CompiledProgram& base,
                              const OptimizerOptions& options,
                              obs::Telemetry* telemetry = nullptr);

  /// FNV-1a over the printed program plus the semantics-affecting options:
  /// the printer is deterministic, and a resuming process re-derives this
  /// from its own freshly loaded session, so equal fingerprints mean "the
  /// same fixpoint computation". Checkpoints bind to this value.
  static uint64_t Fingerprint(const Program& program,
                              const EvalOptions& eval);

  /// The full ProgramCache key: the raw source text followed by one byte
  /// per CompileOptions field that changes the artifact or its semantics
  /// (framed by marker bytes so fields cannot elide into each other).
  /// Computable without parsing — that is the point: a cache hit skips
  /// the parser and the optimizer entirely. Distinct semantics (e.g.
  /// naive vs semi-naive) therefore never share an entry even though the
  /// rewritten rules would be identical. ProgramCache keys on this full
  /// byte string, not on a hash of it, so two distinct programs can never
  /// alias an entry (FNV-1a is not collision-resistant, and a collision
  /// would silently serve the wrong artifact).
  static std::string CacheKeyMaterial(std::string_view source,
                                      const CompileOptions& options);

  /// CacheKeyMaterial for a full QueryRequest: folds the request's
  /// artifact-affecting overrides (today: representation) into `options`
  /// before keying. Service-only knobs — tenant, budget, cancellation,
  /// checkpointing, the standing flag — are deliberately excluded: they
  /// change how an evaluation runs, never what the compile produces, so
  /// including them would only shatter the cache.
  static std::string CacheKeyMaterial(const QueryRequest& request,
                                      const CompileOptions& options);

  /// FNV-1a over CacheKeyMaterial — a compact fingerprint of the cache
  /// key for logs and tests. Not used as a cache index (see above).
  static uint64_t CacheKey(std::string_view source,
                           const CompileOptions& options);

  const ContextPtr& context() const { return ctx_; }
  const Program& program() const { return program_; }
  /// Ground facts parsed from the source, plus the magic seed when the
  /// rewrite produced one. Copy-on-write: cloning into a session EDB is
  /// O(#relations).
  const Database& facts() const { return facts_; }
  const OptimizationReport& report() const { return report_; }
  /// OK, or kCancelled when the optimizer stopped at a phase boundary.
  const Status& optimize_termination() const { return optimize_termination_; }
  const std::optional<Atom>& magic_seed() const { return magic_seed_; }
  bool optimized() const { return optimized_; }
  /// Fingerprint(program(), semantics from the CompileOptions).
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  CompiledProgram(ContextPtr ctx, Program program);

  ContextPtr ctx_;
  Program program_;
  Database facts_;
  OptimizationReport report_;
  Status optimize_termination_;
  std::optional<Atom> magic_seed_;
  bool optimized_ = false;
  uint64_t fingerprint_ = 0;
};

}  // namespace exdl

#endif  // EXDL_CORE_COMPILED_PROGRAM_H_
