// The optimizer pipeline — the paper's end-to-end compilation:
//
//   adorn (Section 2)
//     -> push projections (Section 3.2, Lemma 3.2)
//     -> extract existential components (Section 3.1, Lemma 3.1)
//     -> add covering unit rules (Section 5)
//     -> delete redundant rules (Algorithm 5.2; summaries, optionally
//        Sagiv's UE test and the optimistic Theorem 5.2 test)
//     -> retract added unit rules that ended up load-free
//     -> cleanup
//   [ -> magic-set rewriting (orthogonal selection pushing) ]
//
// Every phase preserves the query answers for all instances of the input
// (EDB) schema; the tests verify this property on random instances.

#ifndef EXDL_CORE_OPTIMIZER_H_
#define EXDL_CORE_OPTIMIZER_H_

#include <optional>

#include "ast/program.h"
#include "core/report.h"
#include "transform/rule_deletion.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace exdl {

namespace obs {
class Telemetry;
}  // namespace obs

struct OptimizerOptions {
  bool adorn = true;
  bool push_projections = true;
  bool extract_components = true;
  bool add_unit_rules = true;
  bool delete_rules = true;
  /// Deletion backends; input_preds is filled by the optimizer.
  DeletionOptions deletion;
  /// Also apply magic sets at the end (selection pushing; Section 1/6's
  /// orthogonality). Requires constants in the query to be useful.
  bool apply_magic = false;
  /// Example 11's folding heuristic: fold almost-unit rule bodies into
  /// auxiliary predicates, retry deletion, then inline the auxiliaries
  /// away. Off by default (the paper calls the fold "essentially a
  /// guess").
  bool enable_folding = false;
  /// External cancellation, polled between phases. Every phase preserves
  /// query equivalence, so cancelling returns the program as optimized by
  /// the completed prefix of phases — still a correct program — with
  /// OptimizedProgram::termination set to kCancelled. Not owned.
  const CancellationToken* cancellation = nullptr;
  /// Observability sink: when non-null, each phase records a trace span
  /// ("optimize > phase:<name>") with rule-delta attrs plus registry
  /// counters (optimize.rules_deleted, ...). Null = no-op; results and
  /// report text are byte-identical either way. Not owned.
  obs::Telemetry* telemetry = nullptr;
};

struct OptimizedProgram {
  Program program;
  /// Set when magic was applied: insert into the EDB before evaluating.
  std::optional<Atom> magic_seed;
  OptimizationReport report;
  /// OK when the full pipeline ran; kCancelled when it stopped early at a
  /// phase boundary (program holds the completed-prefix result and
  /// report.interrupted_before names the phase that did not run).
  Status termination;
};

/// Runs the pipeline. `program` must have a query; base predicates form
/// the input schema.
Result<OptimizedProgram> OptimizeExistential(
    const Program& program, const OptimizerOptions& options = {});

}  // namespace exdl

#endif  // EXDL_CORE_OPTIMIZER_H_
