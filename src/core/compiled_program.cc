#include "core/compiled_program.h"

#include "ast/printer.h"
#include "core/query_request.h"
#include "parser/parser.h"

namespace exdl {

namespace {

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

CompiledProgram::CompiledProgram(ContextPtr ctx, Program program)
    : ctx_(std::move(ctx)), program_(std::move(program)) {}

uint64_t CompiledProgram::Fingerprint(const Program& program,
                                      const EvalOptions& eval) {
  std::string repr = ToString(program);
  repr += eval.seminaive ? "|seminaive" : "|naive";
  repr += eval.boolean_cut ? "|cut" : "|nocut";
  return Fnv1a(1469598103934665603ULL, repr.data(), repr.size());
}

std::string CompiledProgram::CacheKeyMaterial(std::string_view source,
                                              const CompileOptions& options) {
  // Every toggle that changes the artifact or the semantics it is bound
  // to gets one byte; the leading marker bytes keep fields from eliding
  // into each other if more are appended later.
  const OptimizerOptions& o = options.optimizer;
  const unsigned char bits[] = {
      0xC1,
      static_cast<unsigned char>(options.optimize),
      static_cast<unsigned char>(options.seminaive),
      static_cast<unsigned char>(options.boolean_cut),
      0xC2,
      static_cast<unsigned char>(o.adorn),
      static_cast<unsigned char>(o.push_projections),
      static_cast<unsigned char>(o.extract_components),
      static_cast<unsigned char>(o.add_unit_rules),
      static_cast<unsigned char>(o.delete_rules),
      static_cast<unsigned char>(o.apply_magic),
      static_cast<unsigned char>(o.enable_folding),
      0xC3,
      static_cast<unsigned char>(o.deletion.use_subsumption),
      static_cast<unsigned char>(o.deletion.use_summaries),
      static_cast<unsigned char>(o.deletion.use_sagiv),
      static_cast<unsigned char>(o.deletion.use_optimistic),
      static_cast<unsigned char>(o.deletion.cleanup),
      0xC4,
      static_cast<unsigned char>(options.representation),
  };
  std::string material;
  material.reserve(source.size() + sizeof(bits));
  material.append(source.data(), source.size());
  material.append(reinterpret_cast<const char*>(bits), sizeof(bits));
  return material;
}

std::string CompiledProgram::CacheKeyMaterial(const QueryRequest& request,
                                              const CompileOptions& options) {
  CompileOptions effective = options;
  if (request.representation.has_value()) {
    effective.representation = *request.representation;
  }
  return CacheKeyMaterial(request.source, effective);
}

uint64_t CompiledProgram::CacheKey(std::string_view source,
                                   const CompileOptions& options) {
  const std::string material = CacheKeyMaterial(source, options);
  return Fnv1a(1469598103934665603ULL, material.data(), material.size());
}

Result<CompiledProgram::Ptr> CompiledProgram::Compile(
    std::string_view source, const CompileOptions& options,
    obs::Telemetry* telemetry, ContextPtr ctx) {
  if (ctx == nullptr) ctx = std::make_shared<Context>();
  EXDL_ASSIGN_OR_RETURN(ParsedUnit parsed, ParseProgram(source, ctx));
  Database facts;
  for (const Atom& fact : parsed.facts) {
    EXDL_RETURN_IF_ERROR(facts.AddFact(fact));
  }
  return FromProgram(std::move(parsed.program), std::move(facts), options,
                     telemetry);
}

Result<CompiledProgram::Ptr> CompiledProgram::FromProgram(
    Program program, Database facts, const CompileOptions& options,
    obs::Telemetry* telemetry) {
  // Copy the context out before the move: the two constructor arguments
  // have unspecified evaluation order, so `program.context()` must not
  // race the move-out of `program` in the same call.
  ContextPtr ctx = program.context();
  std::shared_ptr<CompiledProgram> out(
      new CompiledProgram(std::move(ctx), std::move(program)));
  out->facts_ = std::move(facts);
  if (options.optimize) {
    OptimizerOptions opt = options.optimizer;
    if (opt.telemetry == nullptr) opt.telemetry = telemetry;
    EXDL_ASSIGN_OR_RETURN(OptimizedProgram optimized,
                          OptimizeExistential(out->program_, opt));
    out->program_ = std::move(optimized.program);
    out->report_ = std::move(optimized.report);
    out->optimize_termination_ = std::move(optimized.termination);
    out->magic_seed_ = std::move(optimized.magic_seed);
    if (out->magic_seed_) {
      EXDL_RETURN_IF_ERROR(out->facts_.AddFact(*out->magic_seed_));
    }
    out->optimized_ = true;
  }
  EvalOptions semantics;
  semantics.seminaive = options.seminaive;
  semantics.boolean_cut = options.boolean_cut;
  out->fingerprint_ = Fingerprint(out->program_, semantics);
  return Ptr(std::move(out));
}

Result<CompiledProgram::Ptr> CompiledProgram::Optimize(
    const CompiledProgram& base, const OptimizerOptions& options,
    obs::Telemetry* telemetry) {
  OptimizerOptions opt = options;
  if (opt.telemetry == nullptr) opt.telemetry = telemetry;
  EXDL_ASSIGN_OR_RETURN(OptimizedProgram optimized,
                        OptimizeExistential(base.program_, opt));
  std::shared_ptr<CompiledProgram> out(new CompiledProgram(
      base.ctx_, std::move(optimized.program)));
  out->facts_ = base.facts_.Clone();
  out->report_ = std::move(optimized.report);
  out->optimize_termination_ = std::move(optimized.termination);
  out->magic_seed_ = std::move(optimized.magic_seed);
  if (out->magic_seed_) {
    EXDL_RETURN_IF_ERROR(out->facts_.AddFact(*out->magic_seed_));
  }
  out->optimized_ = true;
  EvalOptions semantics;  // fingerprint semantics carried from defaults
  out->fingerprint_ = Fingerprint(out->program_, semantics);
  return Ptr(std::move(out));
}

}  // namespace exdl
