#include "core/workload.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace exdl {
namespace {

void AddEdge(Database* db, PredId pred, Value from, Value to) {
  const Value row[2] = {from, to};
  db->AddTuple(pred, row);
}

/// Emits the edges of `spec`, calling `edge(from, to)` for each.
template <typename EmitEdge>
std::vector<Value> GenerateGraph(Context* ctx, const GraphSpec& spec,
                                 EmitEdge edge) {
  std::vector<Value> nodes = MakeNodes(ctx, spec.nodes);
  Rng rng(spec.seed);
  int n = spec.nodes;
  switch (spec.kind) {
    case GraphSpec::Kind::kChain:
      for (int i = 0; i + 1 < n; ++i) edge(nodes[i], nodes[i + 1]);
      break;
    case GraphSpec::Kind::kCycle:
      for (int i = 0; i + 1 < n; ++i) edge(nodes[i], nodes[i + 1]);
      if (n > 1) edge(nodes[n - 1], nodes[0]);
      break;
    case GraphSpec::Kind::kRandomSparse: {
      int64_t edges = static_cast<int64_t>(spec.avg_degree * n);
      for (int64_t e = 0; e < edges; ++e) {
        edge(nodes[rng.Below(static_cast<uint64_t>(n))],
             nodes[rng.Below(static_cast<uint64_t>(n))]);
      }
      break;
    }
    case GraphSpec::Kind::kGrid: {
      int side = std::max(1, static_cast<int>(std::sqrt(n)));
      for (int r = 0; r < side; ++r) {
        for (int c = 0; c < side; ++c) {
          int i = r * side + c;
          if (c + 1 < side) edge(nodes[i], nodes[i + 1]);
          if (r + 1 < side) edge(nodes[i], nodes[i + side]);
        }
      }
      break;
    }
    case GraphSpec::Kind::kTree:
      for (int i = 1; i < n; ++i) {
        edge(nodes[rng.Below(static_cast<uint64_t>(i))], nodes[i]);
      }
      break;
    case GraphSpec::Kind::kPreferential: {
      // Each new node links to ~avg_degree targets chosen proportionally
      // to in-degree + 1 (implemented by sampling from an endpoint list).
      std::vector<int> endpoints;
      int per_node = std::max(1, static_cast<int>(spec.avg_degree));
      for (int i = 1; i < n; ++i) {
        for (int k = 0; k < per_node; ++k) {
          int target;
          if (endpoints.empty() || rng.Chance(0.2)) {
            target = static_cast<int>(rng.Below(static_cast<uint64_t>(i)));
          } else {
            target = endpoints[rng.Below(endpoints.size())];
          }
          edge(nodes[i], nodes[target]);
          endpoints.push_back(target);
        }
      }
      break;
    }
  }
  return nodes;
}

}  // namespace

std::vector<Value> MakeNodes(Context* ctx, int count) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(ctx->InternSymbol("n" + std::to_string(i)));
  }
  return out;
}

std::vector<Value> MakeGraph(Context* ctx, Database* db, PredId edge_pred,
                             const GraphSpec& spec) {
  // Pre-size the edge arena: every generator emits at most ~avg_degree * n
  // (plus one for the cycle-closing edge).
  db->GetOrCreate(edge_pred, 2).Reserve(static_cast<size_t>(
      std::max(spec.avg_degree, 1.0) * spec.nodes + 1));
  return GenerateGraph(ctx, spec, [&](Value from, Value to) {
    AddEdge(db, edge_pred, from, to);
  });
}

std::vector<Value> MakeLabeledGraph(Context* ctx, Database* db,
                                    const std::vector<PredId>& edge_preds,
                                    const GraphSpec& spec) {
  Rng label_rng(spec.seed ^ 0x9E3779B97F4A7C15ULL);
  return GenerateGraph(ctx, spec, [&](Value from, Value to) {
    AddEdge(db, edge_preds[label_rng.Below(edge_preds.size())], from, to);
  });
}

void MakeRandomTuples(Context* ctx, Database* db, PredId pred, int count,
                      int domain_size, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> domain = MakeNodes(ctx, domain_size);
  uint32_t arity = ctx->predicate(pred).arity;
  db->GetOrCreate(pred, arity).Reserve(static_cast<size_t>(count));
  std::vector<Value> row(arity);
  for (int i = 0; i < count; ++i) {
    for (uint32_t j = 0; j < arity; ++j) {
      row[j] = domain[rng.Below(domain.size())];
    }
    db->AddTuple(pred, row);
  }
}

}  // namespace exdl
