// Synthetic workload generators for benchmarks and examples. The paper
// reports no machine experiments (see DESIGN.md §3); these generators
// provide the database instances over which its claims are measured.

#ifndef EXDL_CORE_WORKLOAD_H_
#define EXDL_CORE_WORKLOAD_H_

#include <vector>

#include "ast/context.h"
#include "storage/database.h"

namespace exdl {

/// Shape of a generated directed graph over `nodes` vertices.
struct GraphSpec {
  enum class Kind {
    kChain,         ///< n0 -> n1 -> ... -> n_{k-1}
    kCycle,         ///< chain plus a closing edge
    kRandomSparse,  ///< ~avg_degree random out-edges per node
    kGrid,          ///< sqrt(n) x sqrt(n) lattice, right+down edges
    kTree,          ///< random parent among earlier nodes (edges parent->child)
    kPreferential,  ///< preferential attachment (heavy-tailed in-degree)
  };
  Kind kind = Kind::kRandomSparse;
  int nodes = 100;
  double avg_degree = 2.0;  ///< kRandomSparse / kPreferential only.
  uint64_t seed = 42;
};

/// Interns node constants "n0".."n{count-1}".
std::vector<Value> MakeNodes(Context* ctx, int count);

/// Builds the edge relation of `spec` into `db` under `edge_pred`
/// (binary). Returns the nodes used.
std::vector<Value> MakeGraph(Context* ctx, Database* db, PredId edge_pred,
                             const GraphSpec& spec);

/// Like MakeGraph, but each edge gets a uniformly chosen label predicate
/// out of `edge_preds` (for chain-program workloads).
std::vector<Value> MakeLabeledGraph(Context* ctx, Database* db,
                                    const std::vector<PredId>& edge_preds,
                                    const GraphSpec& spec);

/// `count` uniform random tuples over a domain of `domain_size` fresh
/// constants, inserted for `pred`.
void MakeRandomTuples(Context* ctx, Database* db, PredId pred, int count,
                      int domain_size, uint64_t seed);

}  // namespace exdl

#endif  // EXDL_CORE_WORKLOAD_H_
