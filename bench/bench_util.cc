#include "bench_util.h"

#include <cstdlib>
#include <iostream>

namespace exdl::bench {

Setup ParseOrDie(const std::string& source) {
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(source, ctx);
  if (!parsed.ok()) {
    std::cerr << "bench parse error: " << parsed.status().ToString() << "\n";
    std::abort();
  }
  Setup out{ctx, std::move(parsed->program), Database()};
  for (const Atom& fact : parsed->facts) (void)out.edb.AddFact(fact);
  return out;
}

Program OptimizeOrDie(const Program& program,
                      const OptimizerOptions& options) {
  Result<OptimizedProgram> optimized = OptimizeExistential(program, options);
  if (!optimized.ok()) {
    std::cerr << "bench optimize error: " << optimized.status().ToString()
              << "\n";
    std::abort();
  }
  return std::move(optimized->program);
}

EvalResult EvalOrDie(const Program& program, const Database& edb,
                     const EvalOptions& options) {
  Result<EvalResult> result = Evaluate(program, edb, options);
  if (!result.ok()) {
    std::cerr << "bench eval error: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

void ReportStats(benchmark::State& state, const EvalStats& stats) {
  state.counters["tuples"] = static_cast<double>(stats.tuples_inserted);
  state.counters["dups"] = static_cast<double>(stats.duplicate_inserts);
  state.counters["firings"] = static_cast<double>(stats.rule_firings);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
}

}  // namespace exdl::bench
