#include "bench_util.h"

#include <errno.h>  // program_invocation_short_name (GNU)

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>

#include "core/engine.h"
#include "recovery/atomic_file.h"

namespace exdl::bench {

namespace {

/// One JSON row per benchmark case. Benches report one representative
/// evaluation — typically their fastest iteration (KeepFastest); all
/// iterations repeat identical work, so only the timing varies.
struct BenchRecord {
  EvalStats stats;
  bool has_result = false;
  size_t answers = 0;
  size_t peak_relation_rows = 0;
  size_t total_rows = 0;
  /// Service throughput (ReportThroughput); 0 = not a throughput case.
  double queries_per_sec = 0;
  /// Full telemetry document (per-rule rows, metrics, spans) captured by
  /// EvalOrDie when EXDL_BENCH_METRICS is set; empty otherwise.
  std::string telemetry_json;
};

std::map<std::string, BenchRecord>& Records() {
  static auto* records = new std::map<std::string, BenchRecord>();
  return *records;
}

std::mutex g_records_mutex;

/// Telemetry document of the most recent EvalOrDie (benches evaluate and
/// then ReportResult on the same thread, so last-wins pairing is exact).
std::string g_last_telemetry;

/// EXDL_BENCH_METRICS=1 turns on the engine telemetry sink inside
/// EvalOrDie and folds the per-rule/per-phase telemetry document into each
/// bench's JSON row. Off by default: benches measure the untraced path.
bool MetricsEnabled() {
  const char* value = std::getenv("EXDL_BENCH_METRICS");
  return value != nullptr && *value != '\0' &&
         std::string_view(value) != "0";
}

/// printf-append onto a std::string (the document is built in memory so
/// the final write can be atomic — a killed bench never leaves a torn
/// BENCH_*.json behind for the sweep harness to parse).
void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

void WriteBenchJson() {
  const std::map<std::string, BenchRecord>& records = Records();
  if (records.empty()) return;
#ifdef __GLIBC__
  const char* exe = program_invocation_short_name;
#else
  const char* exe = "bench";
#endif
  std::string path = std::string("BENCH_") + exe + ".json";
  std::string doc;
  Appendf(doc, "{\n  \"bench\": \"%s\",\n  \"results\": [", exe);
  bool first = true;
  for (const auto& [name, rec] : records) {
    const double secs = rec.stats.eval_seconds;
    const double tps =
        secs > 0 ? static_cast<double>(rec.stats.tuples_inserted) / secs : 0;
    Appendf(doc, "%s\n    {\"name\": \"%s\"", first ? "" : ",", name.c_str());
    Appendf(doc, ", \"eval_seconds\": %.6f", secs);
    Appendf(doc, ", \"max_round_seconds\": %.6f",
            rec.stats.max_round_seconds);
    Appendf(doc, ", \"tuples_per_sec\": %.1f", tps);
    Appendf(doc, ", \"tuples_inserted\": %llu",
            static_cast<unsigned long long>(rec.stats.tuples_inserted));
    Appendf(doc, ", \"duplicate_inserts\": %llu",
            static_cast<unsigned long long>(rec.stats.duplicate_inserts));
    Appendf(doc, ", \"rule_firings\": %llu",
            static_cast<unsigned long long>(rec.stats.rule_firings));
    Appendf(doc, ", \"rounds\": %llu",
            static_cast<unsigned long long>(rec.stats.rounds));
    Appendf(doc, ", \"index_probes\": %llu",
            static_cast<unsigned long long>(rec.stats.index_probes));
    Appendf(doc, ", \"budget_tripped\": \"%s\"",
            std::string(BudgetKindName(rec.stats.budget_tripped)).c_str());
    if (rec.has_result) {
      Appendf(doc, ", \"answers\": %zu", rec.answers);
      Appendf(doc, ", \"peak_relation_rows\": %zu", rec.peak_relation_rows);
      Appendf(doc, ", \"total_rows\": %zu", rec.total_rows);
    }
    if (rec.queries_per_sec > 0) {
      Appendf(doc, ", \"queries_per_sec\": %.1f", rec.queries_per_sec);
    }
    if (!rec.telemetry_json.empty()) {
      // Telemetry documents exceed the Appendf buffer; splice directly.
      doc += ", \"telemetry\": ";
      doc += rec.telemetry_json;
    }
    doc += "}";
    first = false;
  }
  doc += "\n  ]\n}\n";
  Status written = recovery::AtomicWriteFile(path, doc);
  if (!written.ok()) {
    std::cerr << "bench json write failed: " << written.ToString() << "\n";
  }
}

BenchRecord& RecordFor(const std::string& name) {
  static bool registered = [] {
    std::atexit(WriteBenchJson);
    return true;
  }();
  (void)registered;
  return Records()[name];
}

}  // namespace

Setup ParseOrDie(const std::string& source) {
  Engine engine;
  Status loaded = engine.LoadSource(source);
  if (!loaded.ok()) {
    std::cerr << "bench parse error: " << loaded.ToString() << "\n";
    std::abort();
  }
  return Setup{engine.ctx(), engine.program().Clone(), engine.edb().Clone()};
}

Program OptimizeOrDie(const Program& program,
                      const OptimizerOptions& options) {
  EngineOptions engine_options;
  engine_options.optimizer = options;
  Engine engine(std::move(engine_options));
  (void)engine.LoadProgram(program.Clone(), Database());
  Status optimized = engine.Optimize();
  if (!optimized.ok()) {
    std::cerr << "bench optimize error: " << optimized.ToString() << "\n";
    std::abort();
  }
  return engine.program().Clone();
}

EvalResult EvalOrDie(const Program& program, const Database& edb,
                     const EvalOptions& options) {
  EngineOptions engine_options;
  engine_options.eval = options;
  // Budget overrides from the environment, so long-running experiment
  // sweeps can be bounded without recompiling (EXDL_BUDGET_* or the legacy
  // EXDL_BENCH_* names; explicit options win — see EvalBudget::FromEnv).
  // A tripped budget is recorded in the JSON row (`budget_tripped`), not
  // fatal — the partial-result stats are still a valid data point.
  engine_options.eval.budget = EvalBudget::FromEnv(options.budget);
  engine_options.collect_telemetry = MetricsEnabled();
  Engine engine(std::move(engine_options));
  Result<EvalResult> result = engine.Evaluate(program, edb);
  if (!result.ok()) {
    std::cerr << "bench eval error: " << result.status().ToString() << "\n";
    std::abort();
  }
  if (!result->termination.ok()) {
    std::cerr << "bench budget tripped: " << result->termination.ToString()
              << "\n";
  }
  if (engine.telemetry() != nullptr) {
    std::string doc = engine.TelemetryJson("bench", "");
    while (!doc.empty() && doc.back() == '\n') doc.pop_back();
    std::lock_guard<std::mutex> lock(g_records_mutex);
    g_last_telemetry = std::move(doc);
  }
  return std::move(result).value();
}

void ReportStats(benchmark::State& state, const EvalStats& stats) {
  state.counters["tuples"] = static_cast<double>(stats.tuples_inserted);
  state.counters["dups"] = static_cast<double>(stats.duplicate_inserts);
  state.counters["firings"] = static_cast<double>(stats.rule_firings);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
}

void ReportResult(benchmark::State& state, const std::string& name,
                  const EvalResult& result) {
  ReportStats(state, result.stats);
  size_t peak = 0;
  size_t total = 0;
  for (const auto& [pred, rel] : result.db.relations()) {
    peak = std::max(peak, rel.size());
    total += rel.size();
  }
  state.counters["answers"] = static_cast<double>(result.answers.size());
  std::lock_guard<std::mutex> lock(g_records_mutex);
  BenchRecord& rec = RecordFor(name);
  rec.stats = result.stats;
  rec.has_result = true;
  rec.answers = result.answers.size();
  rec.peak_relation_rows = peak;
  rec.total_rows = total;
  rec.telemetry_json = std::move(g_last_telemetry);
  g_last_telemetry.clear();
}

void ReportThroughput(benchmark::State& state, const std::string& name,
                      const EvalResult& result, double queries_per_sec) {
  ReportResult(state, name, result);
  state.counters["qps"] = queries_per_sec;
  std::lock_guard<std::mutex> lock(g_records_mutex);
  RecordFor(name).queries_per_sec = queries_per_sec;
}

void AttachTelemetry(const std::string& name, std::string json) {
  while (!json.empty() && json.back() == '\n') json.pop_back();
  std::lock_guard<std::mutex> lock(g_records_mutex);
  RecordFor(name).telemetry_json = std::move(json);
}

}  // namespace exdl::bench
