// A1 — Engine ablations (design choices called out in DESIGN.md):
//   * semi-naive vs naive rounds,
//   * greedy join reordering vs written order,
//   * the single-tuple-head cut on vs off.
// Not a paper claim; this isolates how much of the measured effects come
// from the substrate rather than from the paper's rewritings.

#include "bench_util.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "tc(X, Y) :- e(X, Y).\n"
    "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
    "?- tc(X, Y).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;  // n rounds of recursion
  spec.nodes = n;
  spec.seed = 3;
  MakeGraph(ctx, &edb, ctx->InternPredicate("e", 2), spec);
  return edb;
}

void RunCase(benchmark::State& state, bool seminaive, bool reorder) {
  Setup setup = ParseOrDie(kProgram);
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalOptions options;
  options.seminaive = seminaive;
  options.plan.reorder = reorder;
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(setup.program, edb, options).stats;
  }
  ReportStats(state, last);
}

void BM_SemiNaive(benchmark::State& state) { RunCase(state, true, true); }
void BM_Naive(benchmark::State& state) { RunCase(state, false, true); }
// Join-order ablation needs a rule where the written order builds a cross
// product that variable-chaining avoids: a-c are disconnected until b
// links Y to Z.
void RunReorderCase(benchmark::State& state, bool reorder) {
  Setup setup = ParseOrDie(
      "q(X, W) :- a(X, Y), c(Z, W), b(Y, Z).\n"
      "?- q(X, W).\n");
  Database edb;
  int n = static_cast<int>(state.range(0));
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("a", 2), n, n, 11);
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("b", 2), n / 4, n, 12);
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("c", 2), n, n, 13);
  EvalOptions options;
  options.plan.reorder = reorder;
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(setup.program, edb, options).stats;
  }
  ReportStats(state, last);
}
void BM_Reorder(benchmark::State& state) { RunReorderCase(state, true); }
void BM_NoReorder(benchmark::State& state) {
  RunReorderCase(state, false);
}

// Cut ablation runs the boolean-heavy program from E2's family.
void BM_Cut(benchmark::State& state, bool cut) {
  Setup setup = ParseOrDie(
      "flag :- sup(S, M), mach(M).\n"
      "ans(X) :- src(X), flag.\n"
      "?- ans(X).\n");
  Database edb;
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("sup", 2),
                   static_cast<int>(state.range(0)), 64, 5);
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("mach", 1),
                   static_cast<int>(state.range(0)) / 8, 64, 6);
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("src", 1), 32, 64, 7);
  EvalOptions options;
  options.boolean_cut = cut;
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(setup.program, edb, options).stats;
  }
  ReportStats(state, last);
}
void BM_CutOn(benchmark::State& state) { BM_Cut(state, true); }
void BM_CutOff(benchmark::State& state) { BM_Cut(state, false); }

BENCHMARK(BM_SemiNaive)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Naive)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Reorder)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoReorder)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CutOn)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CutOff)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
