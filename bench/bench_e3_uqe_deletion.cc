// E3 — Rule deletion under uniform query equivalence makes a recursive
// query non-recursive (Examples 5 & 6, §4).
//
// The paper's Example 5 program cannot be trimmed by Sagiv's uniform
// equivalence test, but uniform *query* equivalence reduces it to a single
// non-recursive rule (Example 6). Rows: original, Sagiv-only optimization,
// full UQE optimization. Expect the UQE-optimized program to run in O(|p|)
// regardless of the closure depth.

#include "bench_util.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "query(X) :- a(X, Y).\n"
    "a(X, Y) :- a(X, Z), p(Z, Y).\n"
    "a(X, Y) :- p(X, Y).\n"
    "?- query(X).\n";

Database MakeEdb(Context* ctx, int nodes) {
  Database edb;
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = nodes;
  spec.avg_degree = 1.5;
  spec.seed = 99;
  MakeGraph(ctx, &edb, ctx->InternPredicate("p", 2), spec);
  return edb;
}

enum class Mode { kOriginal, kSagivOnly, kFullUqe };

void RunCase(benchmark::State& state, Mode mode) {
  Setup setup = ParseOrDie(kProgram);
  Program program = setup.program.Clone();
  if (mode != Mode::kOriginal) {
    OptimizerOptions options;
    options.deletion.use_subsumption = false;  // isolate the named backends
    options.deletion.use_summaries = mode == Mode::kFullUqe;
    options.deletion.use_sagiv = true;
    options.deletion.use_optimistic = mode == Mode::kFullUqe;
    program = OptimizeOrDie(setup.program, options);
  }
  state.counters["rules"] = static_cast<double>(program.NumRules());
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(program, edb).stats;
  }
  ReportStats(state, last);
}

void BM_Original(benchmark::State& state) {
  RunCase(state, Mode::kOriginal);
}
void BM_SagivOnly(benchmark::State& state) {
  RunCase(state, Mode::kSagivOnly);
}
void BM_FullUqe(benchmark::State& state) { RunCase(state, Mode::kFullUqe); }

BENCHMARK(BM_Original)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SagivOnly)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullUqe)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
