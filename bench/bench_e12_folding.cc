// E12 — The folding rewriting (Example 11) as an end-to-end optimization:
// folding the shared body pattern lets the deletion machinery discard the
// heavy recursive rule, which plain deletion cannot touch.

#include "bench_util.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "pnd(X) :- pnn(X, Y), g3(Y, Z, U).\n"
    "pnd(X) :- pnn(X, Z), g1(Z, Y).\n"
    "pnn(X, Z) :- pnn(X, W), g2(W, Z).\n"
    "pnn(X, Z) :- pnn(X, V), g3(V, Z, U), g4(U, W).\n"
    "pnn(X, Y) :- g0(X, Y).\n"
    "?- pnd(X).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g0", 2), n, n / 2, 61);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g1", 2), n, n / 2, 62);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g2", 2), n, n / 2, 63);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g3", 3), n, n / 2, 64);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g4", 2), n, n / 2, 65);
  return edb;
}

void RunCase(benchmark::State& state, bool folding) {
  Setup setup = ParseOrDie(kProgram);
  OptimizerOptions options;
  options.adorn = false;
  options.enable_folding = folding;
  Program program = OptimizeOrDie(setup.program, options);
  state.counters["rules"] = static_cast<double>(program.NumRules());
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  size_t answers = 0;
  for (auto _ : state) {
    EvalResult r = EvalOrDie(program, edb);
    last = r.stats;
    answers = r.answers.size();
  }
  ReportStats(state, last);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_WithoutFolding(benchmark::State& state) { RunCase(state, false); }
void BM_WithFolding(benchmark::State& state) { RunCase(state, true); }

BENCHMARK(BM_WithoutFolding)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WithFolding)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
