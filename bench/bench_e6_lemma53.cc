// E6 — Lemma 5.3 (unit-rule chains) vs Lemma 5.1 (single unit rule) on the
// symmetric program of Example 10.
//
// The recursive rule of Example 10 is only deletable when summaries may be
// matched against *compositions* of unit rules. Rows report how many rules
// each variant deletes and the downstream evaluation cost.

#include "bench_util.h"

#include "equiv/summary_closure.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "pd(X, Y) :- pn(X, Y).\n"
    "pd(X, Y) :- pn(Y, X).\n"
    "pn(X, Y) :- q2(X, Y).\n"
    "pn(X, Y) :- q2(Y, X).\n"
    "q2(X, Y) :- pn(X, Y).\n"
    "pn(X, Y) :- b(X, Y).\n"
    "?- pd(X, Y).\n";

void RunCase(benchmark::State& state, size_t max_chain_length) {
  Setup setup = ParseOrDie(kProgram);
  OptimizerOptions options;
  options.adorn = false;  // the program is already in its final shape
  options.add_unit_rules = false;
  options.deletion.use_subsumption = false;  // isolate the summary tests
  options.deletion.closure.max_chain_length = max_chain_length;
  Program program = OptimizeOrDie(setup.program, options);
  state.counters["rules"] = static_cast<double>(program.NumRules());
  Database edb;
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("b", 2),
                   static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(0)) / 2, 77);
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(program, edb).stats;
  }
  ReportStats(state, last);
}

void BM_Lemma51(benchmark::State& state) { RunCase(state, 1); }
void BM_Lemma53(benchmark::State& state) { RunCase(state, 0); }

void BM_Unoptimized(benchmark::State& state) {
  Setup setup = ParseOrDie(kProgram);
  Database edb;
  MakeRandomTuples(setup.ctx.get(), &edb,
                   setup.ctx->InternPredicate("b", 2),
                   static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(0)) / 2, 77);
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(setup.program, edb).stats;
  }
  ReportStats(state, last);
}

BENCHMARK(BM_Unoptimized)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lemma51)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lemma53)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
