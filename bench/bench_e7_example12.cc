// E7 — Example 12 (§6): the arity-reducing rule transformation on the
// filtered same-generation program.
//
// Original:  p(X,Y,Z) threads the filter column Z through the recursion
//            (its adornment keeps Z needed, so plain projection pushing
//            does not help — exactly the paper's point).
// Transformed (as given in Example 12): the filter c(Z) moves into the
// exit rule and the recursion becomes binary.
//
// The transformation itself is future work in the paper ("an interesting
// problem is to explore more general transformations"); both programs are
// hard-coded here and their equivalence is asserted, then measured.

#include "bench_util.h"

namespace exdl::bench {
namespace {

const char kOriginal[] =
    "query(X, Y) :- p(X, Y, Z).\n"
    "p(X, Y, Z) :- up(X, X1), p(X1, Y1, Z), dn(Y1, Y), c(Z).\n"
    "p(X, Y, Z) :- b(X, Y, Z).\n"
    "?- query(X, Y).\n";

// Note the second query rule: the original exit rule p(X,Y,Z) :- b(X,Y,Z)
// has no c(Z) filter, so zero-recursion answers are unconditional.
const char kTransformed[] =
    "query(X, Y) :- pt(X, Y).\n"
    "query(X, Y) :- b(X, Y, Z).\n"
    "pt(X, Y) :- up(X, X1), pt(X1, Y1), dn(Y1, Y).\n"
    "pt(X, Y) :- b(X, Y, Z), c(Z).\n"
    "?- query(X, Y).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kTree;
  spec.nodes = n;
  spec.seed = 31;
  PredId up = ctx->InternPredicate("up", 2);
  PredId dn = ctx->InternPredicate("dn", 2);
  std::vector<Value> nodes = MakeGraph(ctx, &edb, up, spec);
  // dn = a second random tree over the same nodes (reversed edges).
  spec.seed = 32;
  MakeGraph(ctx, &edb, dn, spec);
  // Several Z witnesses per (X, Y) pair: the ternary program must carry
  // them all through the recursion, the binary one collapses them.
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("b", 3), 4 * n, n / 3, 33);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("c", 1), n / 4, n / 2,
                   34);
  return edb;
}

void RunCase(benchmark::State& state, const char* source) {
  Setup setup = ParseOrDie(source);
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  size_t answers = 0;
  for (auto _ : state) {
    EvalResult r = EvalOrDie(setup.program, edb);
    last = r.stats;
    answers = r.answers.size();
  }
  ReportStats(state, last);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_OriginalTernary(benchmark::State& state) {
  RunCase(state, kOriginal);
}
void BM_TransformedBinary(benchmark::State& state) {
  RunCase(state, kTransformed);
}

BENCHMARK(BM_OriginalTernary)->Arg(100)->Arg(300)->Arg(900)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransformedBinary)->Arg(100)->Arg(300)->Arg(900)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
