// E5 — Compile-time detection of empty answers (Example 8, §5).
//
// In Example 8 the deletion cascade removes every rule: "the set of
// answers is seen to be empty" at compile time. We compare the cost of
// discovering that emptiness at run time (evaluating the original
// program, which derives plenty of intermediate facts) against the
// optimizer's compile-time detection plus evaluating the empty program.

#include "bench_util.h"

namespace exdl::bench {
namespace {

// p1 has no exit rule: its extension is empty, everything reachable from
// the query collapses. The gi relations are large, so the original
// program grinds through g-joins for nothing... (the body of r1 still
// fires on g1 x p1 = empty, but r3's g-only prefix work is real).
const char kProgram[] =
    "q(X) :- mid(X, Y).\n"
    "mid(X, Y) :- p1(X, Z, U), g1(Z, U, Y).\n"
    "p1(X, Z, U) :- p1(X, W, W2), g2(W, Z, U).\n"
    "busy(X, Y) :- g1(X, U, V), g2(V, U2, Y2), g3(Y2, Y).\n"
    "mid(X, Y) :- busy(X, Z), p1(Z, Y, U).\n"
    "?- q(X).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g1", 3), n, n / 3, 21);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g2", 3), n, n / 3, 22);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("g3", 2), n, n / 3, 23);
  return edb;
}

void BM_Original(benchmark::State& state) {
  Setup setup = ParseOrDie(kProgram);
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  for (auto _ : state) {
    EvalResult r = EvalOrDie(setup.program, edb);
    last = r.stats;
    if (!r.answers.empty()) std::abort();  // must be empty
  }
  ReportStats(state, last);
}

void BM_OptimizedEmpty(benchmark::State& state) {
  Setup setup = ParseOrDie(kProgram);
  Program program = OptimizeOrDie(setup.program);
  state.counters["rules"] = static_cast<double>(program.NumRules());
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  for (auto _ : state) {
    EvalResult r = EvalOrDie(program, edb);
    last = r.stats;
    if (!r.answers.empty()) std::abort();
  }
  ReportStats(state, last);
}

void BM_CompileTime(benchmark::State& state) {
  Setup setup = ParseOrDie(kProgram);
  for (auto _ : state) {
    Program program = OptimizeOrDie(setup.program);
    benchmark::DoNotOptimize(program.NumRules());
  }
}

BENCHMARK(BM_Original)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptimizedEmpty)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileTime)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
