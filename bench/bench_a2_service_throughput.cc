// A2 — QueryService throughput (DESIGN.md §12): end-to-end queries/sec
// through the concurrent service at 1/2/4 workers, cold cache (every
// submission parses + optimizes) vs warm cache (every submission hits the
// ProgramCache and only evaluates). The warm/cold gap is the amortized
// compile cost; the worker sweep is the scaling of independent sessions
// over one shared EDB snapshot.

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

namespace exdl::bench {
namespace {

constexpr int kChainNodes = 96;
constexpr int kDistinctQueries = 8;

/// Ground facts for a chain graph, loaded once as the shared EDB.
std::string ChainFacts() {
  std::string facts;
  for (int i = 0; i < kChainNodes; ++i) {
    facts += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  return facts;
}

/// Distinct query sources (distinct cache keys): same rules, different
/// query constant, so a cold run compiles all of them.
std::vector<QueryRequest> MakeRequests() {
  std::vector<QueryRequest> requests;
  for (int q = 0; q < kDistinctQueries; ++q) {
    const std::string start = "n" + std::to_string(q);
    requests.push_back(QueryRequest{
        "tc(X, Y) :- e(X, Y).\n"
        "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
        "?- tc(" + start + ", Y).\n",
        "q" + start});
  }
  return requests;
}

ServiceOptions MakeOptions(uint32_t workers, bool warm) {
  ServiceOptions options;
  options.num_workers = workers;
  options.compile.optimize = true;  // Makes the compile cost worth caching.
  // Cold cases disable the cache so *every* iteration re-parses and
  // re-optimizes; warm cases prime it once and then always hit.
  options.program_cache_capacity = warm ? 64 : 0;
  return options;
}

/// Sums the per-query stats of one awaited batch into `aggregate`; the
/// last response's database/answers become the JSON row's result shape.
void FoldBatch(QueryService& service, const std::vector<QueryService::Ticket>& tickets,
               EvalResult& aggregate) {
  for (QueryService::Ticket ticket : tickets) {
    QueryResponse response = service.Await(ticket);
    if (!response.status.ok()) {
      std::abort();  // Bench programs must not fail quietly.
    }
    aggregate.stats += response.result.stats;
    aggregate.db = std::move(response.result.db);
    aggregate.answers = std::move(response.result.answers);
  }
}

void RunCase(benchmark::State& state, bool warm) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  QueryService service(MakeOptions(workers, warm));
  if (!service.LoadFacts(ChainFacts()).ok()) std::abort();
  const std::vector<QueryRequest> requests = MakeRequests();
  EvalResult aggregate;
  if (warm) {
    // Prime the cache; the timed loop below then only ever hits.
    FoldBatch(service, service.SubmitBatch(requests), aggregate);
    aggregate = EvalResult();
  }
  size_t queries = 0;
  std::chrono::duration<double> wall{0};
  for (auto _ : state) {
    aggregate = EvalResult();
    const auto start = std::chrono::steady_clock::now();
    FoldBatch(service, service.SubmitBatch(requests), aggregate);
    wall += std::chrono::steady_clock::now() - start;
    queries += requests.size();
  }
  const double qps =
      wall.count() > 0 ? static_cast<double>(queries) / wall.count() : 0;
  ReportThroughput(state,
                   std::string("service/") + (warm ? "warm" : "cold") +
                       "/workers:" + std::to_string(workers),
                   aggregate, qps);
}

void BM_ServiceCold(benchmark::State& state) { RunCase(state, false); }
void BM_ServiceWarm(benchmark::State& state) { RunCase(state, true); }

BENCHMARK(BM_ServiceCold)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceWarm)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
