// A3 — standing-query maintenance (DESIGN.md §16): sustained
// update/query mix through the QueryService at 1/2/4 workers. Both cases
// run the same scenario — register/submit 8 transitive-closure queries
// over a chain EDB, then absorb kGenerations fact loads and read every
// query's answers after each load:
//
//   * incremental: the queries are registered once as standing views;
//     each LoadFacts maintains them by delta-driven semi-naive
//     re-derivation, and the per-generation reads are PollStandingQuery
//     (no evaluation at all).
//   * recompute: the queries are re-submitted after every load, so each
//     generation re-runs every fixpoint from scratch (the program cache
//     is warm — the gap measured is evaluation, not compilation).
//
// The incremental case asserts ivm.full_recomputes == 0 (the fast path
// actually ran) and that the final polled answers are byte-identical to
// cold re-evaluations of the same generation — the maintained view is a
// correct materialization, not a faster approximation.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "service/answer_text.h"
#include "service/query_service.h"

namespace exdl::bench {
namespace {

// The EDB is many short *disjoint* chains rather than one long one: the
// fixpoint's round count is the chain depth (shallow for both cases),
// while the tuple volume scales with the chain count — so the measured
// gap is the O(delta)-vs-O(database) per-round work, not per-round
// fixed overhead (a single long chain needs O(n) delta rounds to
// propagate an appended edge back to the head, which would bound the
// speedup by round overhead alone).
constexpr int kChains = 512;
constexpr int kChainLen = 16;    ///< Edges per chain (= fixpoint depth).
constexpr int kEdgesPerGen = 4;  ///< Chains extended per generation.
constexpr int kGenerations = 6;
constexpr int kStandingQueries = 8;

std::string NodeName(int chain, int pos) {
  return "c" + std::to_string(chain) + "x" + std::to_string(pos);
}

/// The base EDB: kChains disjoint chains of kChainLen edges each.
std::string BaseFacts() {
  std::string facts;
  for (int c = 0; c < kChains; ++c) {
    for (int p = 0; p < kChainLen; ++p) {
      facts += "e(" + NodeName(c, p) + ", " + NodeName(c, p + 1) + ").\n";
    }
  }
  return facts;
}

/// Generation `g`'s delta: one edge appended to each of kEdgesPerGen
/// rotating chains (every chain is extended at most once across a run).
std::string DeltaFacts(int g) {
  std::string facts;
  for (int j = 0; j < kEdgesPerGen; ++j) {
    const int c = (g * kEdgesPerGen + j) % kChains;
    facts += "e(" + NodeName(c, kChainLen) + ", " +
             NodeName(c, kChainLen + 1) + ").\n";
  }
  return facts;
}

/// Distinct TC queries (distinct cache keys / standing views): same rules,
/// different chain-head constant, as in A2. Chains 0..7 are extended in
/// the first two generations, so the polled answers actually change.
std::vector<QueryRequest> MakeRequests() {
  std::vector<QueryRequest> requests;
  for (int q = 0; q < kStandingQueries; ++q) {
    const std::string start = NodeName(q, 0);
    requests.push_back(QueryRequest{
        "tc(X, Y) :- e(X, Y).\n"
        "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
        "?- tc(" + start + ", Y).\n",
        "q" + start});
  }
  return requests;
}

ServiceOptions MakeOptions(uint32_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.compile.optimize = true;
  options.program_cache_capacity = 64;  // Warm both cases: measure eval.
  return options;
}

bool MetricsEnabled() {
  const char* value = std::getenv("EXDL_BENCH_METRICS");
  return value != nullptr && *value != '\0' && std::string_view(value) != "0";
}

/// Re-evaluates every request cold and compares the rendered answers to
/// the standing views' polled answers — the byte-identity contract.
void VerifyAgainstCold(QueryService& service,
                       const std::vector<QueryRequest>& requests,
                       const std::vector<uint64_t>& standing_ids,
                       EvalResult* aggregate) {
  for (size_t q = 0; q < requests.size(); ++q) {
    QueryResponse cold = service.Await(service.Submit(requests[q]));
    if (!cold.status.ok()) std::abort();
    Result<StandingQueryResult> polled =
        service.PollStandingQuery(standing_ids[q]);
    if (!polled.ok()) std::abort();
    if (polled->stats.full_recomputes != 0 ||
        polled->fallback != ivm::Fallback::kNone) {
      std::cerr << "bench: standing view " << standing_ids[q]
                << " fell back to full recompute\n";
      std::abort();
    }
    const std::string cold_text =
        RenderAnswerRows(*service.ctx(), cold.result.answers);
    if (cold_text != polled->answers ||
        cold.snapshot_generation != polled->generation) {
      std::cerr << "bench: standing answers diverged from cold run for "
                << requests[q].name << "\n";
      std::abort();
    }
    aggregate->stats += cold.result.stats;
    aggregate->db = std::move(cold.result.db);
    aggregate->answers = std::move(cold.result.answers);
  }
}

void BM_StandingIncremental(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  const std::vector<QueryRequest> requests = MakeRequests();
  const std::string name =
      "standing/incremental/workers:" + std::to_string(workers);
  EvalResult aggregate;
  size_t reads = 0;
  std::chrono::duration<double> wall{0};
  std::string metrics_doc;
  for (auto _ : state) {
    QueryService service(MakeOptions(workers));
    if (!service.LoadFacts(BaseFacts()).ok()) std::abort();
    std::vector<uint64_t> ids;
    for (const QueryRequest& request : requests) {
      Result<uint64_t> id = service.RegisterStandingQuery(request);
      if (!id.ok()) std::abort();
      ids.push_back(*id);
    }
    const auto start = std::chrono::steady_clock::now();
    for (int g = 0; g < kGenerations; ++g) {
      if (!service.LoadFacts(DeltaFacts(g)).ok()) std::abort();
      for (uint64_t id : ids) {
        Result<StandingQueryResult> polled = service.PollStandingQuery(id);
        if (!polled.ok() || polled->answer_count == 0) std::abort();
        ++reads;
      }
    }
    wall += std::chrono::steady_clock::now() - start;
    aggregate = EvalResult();
    VerifyAgainstCold(service, requests, ids, &aggregate);
    if (MetricsEnabled()) metrics_doc = service.MetricsJson();
  }
  const double qps =
      wall.count() > 0 ? static_cast<double>(reads) / wall.count() : 0;
  ReportThroughput(state, name, aggregate, qps);
  if (!metrics_doc.empty()) AttachTelemetry(name, std::move(metrics_doc));
}

void BM_StandingRecompute(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  const std::vector<QueryRequest> requests = MakeRequests();
  const std::string name =
      "standing/recompute/workers:" + std::to_string(workers);
  EvalResult aggregate;
  size_t reads = 0;
  std::chrono::duration<double> wall{0};
  std::string metrics_doc;
  for (auto _ : state) {
    QueryService service(MakeOptions(workers));
    if (!service.LoadFacts(BaseFacts()).ok()) std::abort();
    // Prime the program cache so the timed loop measures evaluation.
    for (QueryResponse& r :
         service.AwaitBatch(service.SubmitBatch(requests))) {
      if (!r.status.ok()) std::abort();
    }
    const auto start = std::chrono::steady_clock::now();
    aggregate = EvalResult();
    for (int g = 0; g < kGenerations; ++g) {
      if (!service.LoadFacts(DeltaFacts(g)).ok()) std::abort();
      for (QueryResponse& r :
           service.AwaitBatch(service.SubmitBatch(requests))) {
        if (!r.status.ok() || r.result.answers.empty()) std::abort();
        aggregate.stats += r.result.stats;
        aggregate.db = std::move(r.result.db);
        aggregate.answers = std::move(r.result.answers);
        ++reads;
      }
    }
    wall += std::chrono::steady_clock::now() - start;
    if (MetricsEnabled()) metrics_doc = service.MetricsJson();
  }
  const double qps =
      wall.count() > 0 ? static_cast<double>(reads) / wall.count() : 0;
  ReportThroughput(state, name, aggregate, qps);
  if (!metrics_doc.empty()) AttachTelemetry(name, std::move(metrics_doc));
}

BENCHMARK(BM_StandingIncremental)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StandingRecompute)
    ->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
