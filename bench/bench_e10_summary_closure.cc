// E10 — Compile-time cost of Algorithm 5.1's summary closure as the
// program grows (rules per predicate, predicate arity, chain depth).
//
// The closure is finite but can touch many partition summaries; this
// bench shows the optimizer's compile cost stays in the milliseconds for
// realistic program sizes, and how it scales.

#include "bench_util.h"

#include "equiv/summary_closure.h"

namespace exdl::bench {
namespace {

/// Builds a layered program: query -> l0 -> l1 -> ... -> l{depth-1} -> base,
/// `width` rules per layer, each layer also has a unit promotion rule.
std::string LayeredProgram(int depth, int width) {
  std::string out = "query(X) :- l0(X, Y).\n?- query(X).\n";
  for (int d = 0; d < depth; ++d) {
    std::string self = "l" + std::to_string(d);
    std::string next =
        d + 1 == depth ? "base" : ("l" + std::to_string(d + 1));
    out += self + "(X, Y) :- " + next + "(X, Y).\n";  // unit rule
    for (int w = 0; w < width; ++w) {
      out += self + "(X, Y) :- " + next + "(X, Z), e" + std::to_string(w) +
             "(Z, Y).\n";
    }
    out += self + "(X, Y) :- " + self + "(X, Z), " + self + "(Z, Y).\n";
  }
  return out;
}

void BM_SummaryClosure(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  int width = static_cast<int>(state.range(1));
  Setup setup = ParseOrDie(LayeredProgram(depth, width));
  size_t total = 0;
  size_t chains = 0;
  for (auto _ : state) {
    Result<SummaryAnalysis> analysis =
        SummaryAnalysis::Build(setup.program);
    if (!analysis.ok()) std::abort();
    total = analysis->total_summaries();
    chains = analysis->unit_chains().size();
    benchmark::DoNotOptimize(analysis->DeletableRules());
  }
  state.counters["summaries"] = static_cast<double>(total);
  state.counters["unit_chains"] = static_cast<double>(chains);
  state.counters["rules"] = static_cast<double>(setup.program.NumRules());
}

void BM_FullOptimizer(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  int width = static_cast<int>(state.range(1));
  Setup setup = ParseOrDie(LayeredProgram(depth, width));
  for (auto _ : state) {
    Program p = OptimizeOrDie(setup.program);
    benchmark::DoNotOptimize(p.NumRules());
  }
}

BENCHMARK(BM_SummaryClosure)
    ->Args({2, 2})->Args({4, 2})->Args({6, 2})->Args({4, 4})->Args({4, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullOptimizer)
    ->Args({2, 2})->Args({4, 2})->Args({6, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
