// Shared helpers for the experiment benches (see DESIGN.md section 4 for
// the experiment index E1..E11 and EXPERIMENTS.md for results).
//
// Every ReportStats/ReportResult call also records a machine-readable row;
// at process exit the accumulated rows are written to
// `BENCH_<executable>.json` in the working directory (tuples/sec, work
// counters, and — via ReportResult — peak relation sizes and answer
// counts), so successive PRs have a perf trajectory to diff against.
//
// The helpers route through exdl::Engine. EvalOrDie fills unset budget
// limits from the environment (EXDL_BUDGET_* / legacy EXDL_BENCH_* — see
// EvalBudget::FromEnv), and with EXDL_BENCH_METRICS=1 it turns on the
// engine telemetry sink and folds the full telemetry document (per-rule
// rows, metrics, spans) into the bench's JSON row under "telemetry".
// Telemetry is off by default so benches measure the untraced path.

#ifndef EXDL_BENCH_BENCH_UTIL_H_
#define EXDL_BENCH_BENCH_UTIL_H_

#include <string>

#include <benchmark/benchmark.h>

#include "core/optimizer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

namespace exdl::bench {

/// Parses `source`, aborting on error (bench setup must not fail quietly).
struct Setup {
  ContextPtr ctx;
  Program program;
  Database edb;
};
Setup ParseOrDie(const std::string& source);

/// Runs the optimizer, aborting on error.
Program OptimizeOrDie(const Program& program,
                      const OptimizerOptions& options = {});

/// Evaluates, aborting on error.
EvalResult EvalOrDie(const Program& program, const Database& edb,
                     const EvalOptions& options = {});

/// Keeps the fastest of the loop's evaluations for reporting: replaces
/// *best when it is still empty or `candidate` evaluated faster. Bench
/// iterations repeat identical work (every stat but the timing is
/// deterministic), so the minimum eval time is the run least disturbed by
/// scheduler/interrupt noise — the standard microbenchmark estimator, and
/// much steadier than whichever iteration happened to run last for the
/// microsecond-scale cases.
inline void KeepFastest(EvalResult&& candidate, EvalResult* best) {
  if (best->stats.eval_seconds <= 0 ||
      candidate.stats.eval_seconds < best->stats.eval_seconds) {
    *best = std::move(candidate);
  }
}

/// Publishes the standard counters on `state`.
void ReportStats(benchmark::State& state, const EvalStats& stats);

/// Like ReportStats, but also publishes the answer count and records a
/// JSON row under `name` (the installed benchmark library predates
/// State::name(), so cases label themselves) with eval timing, tuples/sec,
/// and peak / total relation sizes from the full evaluation result.
void ReportResult(benchmark::State& state, const std::string& name,
                  const EvalResult& result);

/// ReportResult for service-style cases that process many queries per
/// iteration: also publishes `qps` on `state` and records
/// `queries_per_sec` in the JSON row. `result` carries the aggregate
/// stats of one batch (A2 sums the per-query stats).
void ReportThroughput(benchmark::State& state, const std::string& name,
                      const EvalResult& result, double queries_per_sec);

/// Attaches a telemetry JSON document to `name`'s row directly, for
/// service-level benches where the document comes from
/// QueryService::MetricsJson (with its "service"/"ivm" objects) rather
/// than EvalOrDie's engine sink. Overwrites whatever EvalOrDie captured.
void AttachTelemetry(const std::string& name, std::string json);

}  // namespace exdl::bench

#endif  // EXDL_BENCH_BENCH_UTIL_H_
