// Shared helpers for the experiment benches (see DESIGN.md section 4 for
// the experiment index E1..E11 and EXPERIMENTS.md for results).

#ifndef EXDL_BENCH_BENCH_UTIL_H_
#define EXDL_BENCH_BENCH_UTIL_H_

#include <string>

#include <benchmark/benchmark.h>

#include "core/optimizer.h"
#include "core/workload.h"
#include "eval/evaluator.h"
#include "parser/parser.h"

namespace exdl::bench {

/// Parses `source`, aborting on error (bench setup must not fail quietly).
struct Setup {
  ContextPtr ctx;
  Program program;
  Database edb;
};
Setup ParseOrDie(const std::string& source);

/// Runs the optimizer, aborting on error.
Program OptimizeOrDie(const Program& program,
                      const OptimizerOptions& options = {});

/// Evaluates, aborting on error.
EvalResult EvalOrDie(const Program& program, const Database& edb,
                     const EvalOptions& options = {});

/// Publishes the standard counters on `state`.
void ReportStats(benchmark::State& state, const EvalStats& stats);

}  // namespace exdl::bench

#endif  // EXDL_BENCH_BENCH_UTIL_H_
