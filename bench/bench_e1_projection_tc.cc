// E1 — Projection pushing on transitive closure (Examples 1 & 3, §3.2).
//
// Paper claim: "Reducing the arity of recursive predicates was identified
// as an important performance factor ... the elimination not only reduces
// the facts produced but also reduces the duplicate elimination cost
// significantly."
//
// Rows: binary (original) vs unary (optimized) closure over chains and
// random sparse digraphs of growing size. Expect the unary program to win
// by a factor that grows with graph size (O(n^2) vs O(n) derived facts on
// a chain).

#include "bench_util.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "query(X) :- a(X, Y).\n"
    "a(X, Y) :- p(X, Z), a(Z, Y).\n"
    "a(X, Y) :- p(X, Y).\n"
    "?- query(X).\n";

Database MakeEdb(Context* ctx, GraphSpec::Kind kind, int nodes) {
  Database edb;
  PredId p = ctx->InternPredicate("p", 2);
  GraphSpec spec;
  spec.kind = kind;
  spec.nodes = nodes;
  spec.avg_degree = 1.5;
  spec.seed = 1234;
  MakeGraph(ctx, &edb, p, spec);
  return edb;
}

std::string CaseName(bool optimized, GraphSpec::Kind kind,
                     uint32_t num_threads, int64_t nodes) {
  std::string name = optimized ? "Unary_" : "Binary_";
  name += kind == GraphSpec::Kind::kChain ? "Chain" : "Random";
  if (num_threads > 1) name += "_T" + std::to_string(num_threads);
  return name + "/" + std::to_string(nodes);
}

void RunCase(benchmark::State& state, bool optimized, GraphSpec::Kind kind,
             uint32_t num_threads = 1) {
  Setup setup = ParseOrDie(kProgram);
  // E1 isolates Phase 2 (projection pushing): rule deletion is disabled
  // here, otherwise subsumption also removes the unary recursive rule
  // (the paper's Example 3a/4 deletion, measured separately in E3).
  OptimizerOptions options;
  options.delete_rules = false;
  Program program = optimized ? OptimizeOrDie(setup.program, options)
                              : setup.program.Clone();
  Database edb =
      MakeEdb(setup.ctx.get(), kind, static_cast<int>(state.range(0)));
  EvalOptions eval_options;
  eval_options.num_threads = num_threads;
  EvalResult best;
  for (auto _ : state) {
    KeepFastest(EvalOrDie(program, edb, eval_options), &best);
  }
  ReportResult(state, CaseName(optimized, kind, num_threads, state.range(0)),
               best);
}

void BM_Binary_Chain(benchmark::State& state) {
  RunCase(state, false, GraphSpec::Kind::kChain);
}
void BM_Unary_Chain(benchmark::State& state) {
  RunCase(state, true, GraphSpec::Kind::kChain);
}
void BM_Binary_Random(benchmark::State& state) {
  RunCase(state, false, GraphSpec::Kind::kRandomSparse);
}
void BM_Unary_Random(benchmark::State& state) {
  RunCase(state, true, GraphSpec::Kind::kRandomSparse);
}
// Parallel fixpoint rounds (4 workers) over the same workloads.
void BM_Binary_Chain_T4(benchmark::State& state) {
  RunCase(state, false, GraphSpec::Kind::kChain, 4);
}
void BM_Binary_Random_T4(benchmark::State& state) {
  RunCase(state, false, GraphSpec::Kind::kRandomSparse, 4);
}

BENCHMARK(BM_Binary_Chain)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Unary_Chain)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Binary_Random)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Unary_Random)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Binary_Chain_T4)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Binary_Random_T4)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
