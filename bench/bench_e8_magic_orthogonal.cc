// E8 — Orthogonality of selection pushing (magic sets) and projection
// pushing (§1, §6: "these rewritings are orthogonal to the optimizations
// discussed in this paper").
//
// Bound reachability query on the Example 1 program. Rows: plain
// evaluation, magic only, existential pipeline only, both. Expect the
// combination to do the least work: magic restricts the *nodes* explored,
// the existential pipeline removes the *target column*.

#include "bench_util.h"

#include "transform/magic.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "query(X) :- a(X, Y).\n"
    "a(X, Y) :- p(X, Z), a(Z, Y).\n"
    "a(X, Y) :- p(X, Y).\n"
    "?- query(n0).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = n;
  spec.avg_degree = 2.0;
  spec.seed = 55;
  MakeGraph(ctx, &edb, ctx->InternPredicate("p", 2), spec);
  return edb;
}

void RunCase(benchmark::State& state, bool existential, bool magic,
             bool supplementary = false) {
  Setup setup = ParseOrDie(kProgram);
  OptimizerOptions options;
  options.adorn = existential;
  options.push_projections = existential;
  options.extract_components = existential;
  options.add_unit_rules = existential;
  options.delete_rules = existential;
  options.apply_magic = false;  // applied manually to pick the variant
  Result<OptimizedProgram> optimized =
      OptimizeExistential(setup.program, options);
  if (!optimized.ok()) std::abort();
  if (magic) {
    MagicOptions magic_options;
    magic_options.supplementary = supplementary;
    Result<MagicResult> rewritten =
        MagicRewrite(optimized->program, magic_options);
    if (!rewritten.ok()) std::abort();
    optimized->program = std::move(rewritten->program);
    optimized->magic_seed = std::move(rewritten->seed_fact);
  }
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  if (optimized->magic_seed) {
    edb = WithSeed(edb, *optimized->magic_seed);
  }
  EvalStats last;
  size_t answers = 0;
  for (auto _ : state) {
    EvalResult r = EvalOrDie(optimized->program, edb);
    last = r.stats;
    answers = r.answers.size();
  }
  ReportStats(state, last);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Plain(benchmark::State& state) { RunCase(state, false, false); }
void BM_MagicOnly(benchmark::State& state) { RunCase(state, false, true); }
void BM_ExistentialOnly(benchmark::State& state) {
  RunCase(state, true, false);
}
void BM_Both(benchmark::State& state) { RunCase(state, true, true); }
void BM_BothSupplementary(benchmark::State& state) {
  RunCase(state, true, true, /*supplementary=*/true);
}

BENCHMARK(BM_Plain)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MagicOnly)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExistentialOnly)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Both)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BothSupplementary)->Arg(128)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
