// E9 — Theorem 3.3, constructive side: for a strongly regular chain
// grammar, the synthesized monadic program answers the existential-source
// query with unary recursive predicates.
//
// Language: a b* c over a random labeled graph. Rows: the original binary
// chain program (computing all (X, Y) pairs, then projecting) vs the
// DFA-derived monadic program (computing target nodes only).

#include "bench_util.h"

#include "grammar/monadic.h"

namespace exdl::bench {
namespace {

const char kChain[] =
    "s(X, Y) :- a(X, U), m(U, Y).\n"
    "m(X, Y) :- b(X, U), m(U, Y).\n"
    "m(X, Y) :- c(X, Y).\n"
    "?- s(X, Y).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  std::vector<PredId> labels = {ctx->InternPredicate("a", 2),
                                ctx->InternPredicate("b", 2),
                                ctx->InternPredicate("c", 2)};
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = n;
  spec.avg_degree = 2.5;
  spec.seed = 91;
  MakeLabeledGraph(ctx, &edb, labels, spec);
  return edb;
}

void BM_BinaryChain(benchmark::State& state) {
  Setup setup = ParseOrDie(kChain);
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(setup.program, edb).stats;
  }
  ReportStats(state, last);
}

void BM_Monadic(benchmark::State& state) {
  Setup setup = ParseOrDie(kChain);
  Result<Program> monadic = MonadicEquivalent(setup.program);
  if (!monadic.ok()) std::abort();
  state.counters["rules"] = static_cast<double>(monadic->NumRules());
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(*monadic, edb).stats;
  }
  ReportStats(state, last);
}

BENCHMARK(BM_BinaryChain)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monadic)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
