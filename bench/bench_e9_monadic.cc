// E9 — Theorem 3.3, constructive side: for a strongly regular chain
// grammar, the synthesized monadic program answers the existential-source
// query with unary recursive predicates.
//
// Language: a b* c over a random labeled graph. Rows: the original binary
// chain program (computing all (X, Y) pairs, then projecting) vs the
// DFA-derived monadic program (computing target nodes only), the latter
// under both physical representations (DESIGN.md §14) — the monadic
// program is exactly the shape the bitset kernels target, so
// Monadic_tuple vs Monadic_bitset isolates the executor.
//
// Every case records a JSON row (BENCH_bench_e9_monadic.json); with
// EXDL_BENCH_METRICS=1 the rows carry the full telemetry document, and
// tools/check_bench_fallback.py asserts the monadic bitset cases ran
// kernel-only (storage.representation.fallbacks == 0).

#include "bench_util.h"

#include "grammar/monadic.h"

namespace exdl::bench {
namespace {

const char kChain[] =
    "s(X, Y) :- a(X, U), m(U, Y).\n"
    "m(X, Y) :- b(X, U), m(U, Y).\n"
    "m(X, Y) :- c(X, Y).\n"
    "?- s(X, Y).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  std::vector<PredId> labels = {ctx->InternPredicate("a", 2),
                                ctx->InternPredicate("b", 2),
                                ctx->InternPredicate("c", 2)};
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kRandomSparse;
  spec.nodes = n;
  spec.avg_degree = 2.5;
  spec.seed = 91;
  MakeLabeledGraph(ctx, &edb, labels, spec);
  return edb;
}

void BM_BinaryChain(benchmark::State& state) {
  Setup setup = ParseOrDie(kChain);
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalResult best;
  for (auto _ : state) {
    KeepFastest(EvalOrDie(setup.program, edb), &best);
  }
  ReportResult(state, "BinaryChain/" + std::to_string(state.range(0)), best);
}

void RunMonadic(benchmark::State& state, Representation representation) {
  Setup setup = ParseOrDie(kChain);
  Result<Program> monadic = MonadicEquivalent(setup.program);
  if (!monadic.ok()) std::abort();
  state.counters["rules"] = static_cast<double>(monadic->NumRules());
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalOptions options;
  options.representation = representation;
  EvalResult best;
  for (auto _ : state) {
    KeepFastest(EvalOrDie(*monadic, edb, options), &best);
  }
  ReportResult(state,
               std::string("Monadic_") + RepresentationName(representation) +
                   "/" + std::to_string(state.range(0)),
               best);
}

void BM_Monadic(benchmark::State& state) {
  RunMonadic(state, Representation::kAuto);
}
void BM_Monadic_Tuple(benchmark::State& state) {
  RunMonadic(state, Representation::kTuple);
}
void BM_Monadic_Bitset(benchmark::State& state) {
  RunMonadic(state, Representation::kBitset);
}

BENCHMARK(BM_BinaryChain)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monadic)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monadic_Tuple)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Monadic_Bitset)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
