// E4 — Cascading rule deletion (Example 7, §5).
//
// Example 7's shape: unit rules let Lemma 5.1 discard two rules, after
// which their callee predicates lose all definitions and the cleanup
// cascade shrinks a 7-rule program to 3 rules. We reproduce the cascade on
// a structurally analogous program and measure program size and evaluation
// work before/after.

#include "bench_util.h"

namespace exdl::bench {
namespace {

// q is promoted from a1 via a unit rule; the longer rules through a1/a2
// are all subsumed; once deleted, a2's definitions are unreachable and
// cascade away.
const char kProgram[] =
    "q(X) :- a1(X, Y).\n"                 // unit rule
    "q(X) :- a1(X, Z), b2(Z, W, V).\n"    // subsumed by the unit rule
    "q(X) :- a2(X, Z), b3(Z, W).\n"       // via a2
    "a2(X, Z) :- a1(X, U), b4(U, Z).\n"
    "a1(X, Y) :- b1(X, Y).\n"
    "a1(X, Y) :- a1(X, Z), b5(Z, Y).\n"
    "?- q(X).\n";

Database MakeEdb(Context* ctx, int n) {
  Database edb;
  uint64_t seed = 4;
  for (const char* name : {"b1", "b2", "b3", "b4", "b5"}) {
    uint32_t arity = std::string(name) == "b2" ? 3 : 2;
    MakeRandomTuples(ctx, &edb, ctx->InternPredicate(name, arity), n, n / 2,
                     seed++);
  }
  return edb;
}

void RunCase(benchmark::State& state, bool optimize) {
  Setup setup = ParseOrDie(kProgram);
  Program program = setup.program.Clone();
  if (optimize) {
    OptimizerOptions options;
    options.deletion.use_sagiv = true;
    program = OptimizeOrDie(setup.program, options);
  }
  state.counters["rules"] = static_cast<double>(program.NumRules());
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalStats last;
  size_t answers = 0;
  for (auto _ : state) {
    EvalResult r = EvalOrDie(program, edb);
    last = r.stats;
    answers = r.answers.size();
  }
  ReportStats(state, last);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Original(benchmark::State& state) { RunCase(state, false); }
void BM_Cascaded(benchmark::State& state) { RunCase(state, true); }

BENCHMARK(BM_Original)->Arg(100)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cascaded)->Arg(100)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
