// E11 — Deletion-power hierarchy over a program corpus: Sagiv's uniform
// equivalence test vs the summary tests (Lemma 5.1 / 5.3) vs the
// optimistic Theorem 5.2 test.
//
// Each variant optimizes the same corpus of structured programs; counters
// report the total rules deleted (cleanup excluded) — the paper's claimed
// ordering is Sagiv ⊥ summaries (incomparable in general, complementary in
// practice) with Theorem 5.2 subsuming the summary tests.

#include "bench_util.h"

namespace exdl::bench {
namespace {

std::vector<std::string> Corpus() {
  return {
      // Example 4: recursive rule redundant under UE.
      "a(X) :- p(X, Z), a(Z).\n"
      "a(X) :- p(X, Z).\n"
      "?- a(X).\n",
      // Example 5/6: UQE-only deletions.
      "query(X) :- a(X, Y).\n"
      "a(X, Y) :- a(X, Z), p(Z, Y).\n"
      "a(X, Y) :- p(X, Y).\n"
      "?- query(X).\n",
      // Example 7-style cascade.
      "q(X) :- a1(X, Y).\n"
      "q(X) :- a1(X, Z), b2(Z, W, V).\n"
      "q(X) :- a2(X, Z), b3(Z, W).\n"
      "a2(X, Z) :- a1(X, U), b4(U, Z).\n"
      "a1(X, Y) :- b1(X, Y).\n"
      "?- q(X).\n",
      // Example 10 (needs chains).
      "pd(X, Y) :- pn(X, Y).\n"
      "pd(X, Y) :- pn(Y, X).\n"
      "pn(X, Y) :- q2(X, Y).\n"
      "pn(X, Y) :- q2(Y, X).\n"
      "q2(X, Y) :- pn(X, Y).\n"
      "pn(X, Y) :- b(X, Y).\n"
      "?- pd(X, Y).\n",
      // Plain transitive closure (nothing deletable).
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
      "?- tc(X, Y).\n",
  };
}

void RunCase(benchmark::State& state, bool sagiv, bool summaries,
             bool optimistic, size_t chain_length,
             bool subsumption = false) {
  std::vector<std::string> corpus = Corpus();
  size_t deleted = 0;
  size_t cleaned = 0;
  for (auto _ : state) {
    deleted = 0;
    cleaned = 0;
    for (const std::string& source : corpus) {
      Setup setup = ParseOrDie(source);
      OptimizerOptions options;
      options.deletion.use_subsumption = subsumption;
      options.deletion.use_sagiv = sagiv;
      options.deletion.use_summaries = summaries;
      options.deletion.use_optimistic = optimistic;
      options.deletion.closure.max_chain_length = chain_length;
      Result<OptimizedProgram> optimized =
          OptimizeExistential(setup.program, options);
      if (!optimized.ok()) std::abort();
      deleted += optimized->report.deleted_by_subsumption +
                 optimized->report.deleted_by_summary +
                 optimized->report.deleted_by_sagiv +
                 optimized->report.deleted_by_optimistic;
      cleaned += optimized->report.removed_by_cleanup;
    }
  }
  state.counters["deleted"] = static_cast<double>(deleted);
  state.counters["cleanup"] = static_cast<double>(cleaned);
}

void BM_SagivOnly(benchmark::State& state) {
  RunCase(state, true, false, false, 0);
}
void BM_Lemma51(benchmark::State& state) {
  RunCase(state, false, true, false, 1);
}
void BM_Lemma53(benchmark::State& state) {
  RunCase(state, false, true, false, 0);
}
void BM_Optimistic(benchmark::State& state) {
  RunCase(state, false, false, true, 0);
}
void BM_SubsumptionOnly(benchmark::State& state) {
  RunCase(state, false, false, false, 0, /*subsumption=*/true);
}
void BM_Everything(benchmark::State& state) {
  RunCase(state, true, true, true, 0, /*subsumption=*/true);
}

BENCHMARK(BM_SubsumptionOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SagivOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lemma51)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lemma53)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optimistic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Everything)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
