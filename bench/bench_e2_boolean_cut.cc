// E2 — Boolean subquery extraction and the runtime cut (Example 2, §3.1).
//
// Paper claim: "a rule defining a boolean variable can be removed from the
// fixpoint computation once the variable becomes true" and the rewriting
// "can be more efficiently executed by the bottom-up strategy".
//
// The rule joins the query part with a large disconnected catalog join
// (sup x mach). Rows: original (inline catalog join), optimized with the
// cut, optimized with the cut disabled. Expect: optimized+cut does O(1)
// catalog work; original pays the full cross-join every evaluation.

#include "bench_util.h"

namespace exdl::bench {
namespace {

const char kProgram[] =
    "reach(X) :- edge(X, Y), sup(S, M), mach(M).\n"
    "reach(X) :- edge(X, Z), reach(Z), sup(S, M), mach(M).\n"
    "?- reach(X).\n";

Database MakeEdb(Context* ctx, int catalog) {
  Database edb;
  PredId edge = ctx->InternPredicate("edge", 2);
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kChain;
  spec.nodes = 64;
  MakeGraph(ctx, &edb, edge, spec);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("sup", 2), catalog, 100,
                   5);
  MakeRandomTuples(ctx, &edb, ctx->InternPredicate("mach", 1), catalog / 8,
                   100, 6);
  return edb;
}

void RunCase(benchmark::State& state, bool optimize, bool cut) {
  Setup setup = ParseOrDie(kProgram);
  Program program =
      optimize ? OptimizeOrDie(setup.program) : setup.program.Clone();
  Database edb = MakeEdb(setup.ctx.get(), static_cast<int>(state.range(0)));
  EvalOptions options;
  options.boolean_cut = cut;
  EvalStats last;
  for (auto _ : state) {
    last = EvalOrDie(program, edb, options).stats;
  }
  ReportStats(state, last);
}

void BM_Original(benchmark::State& state) { RunCase(state, false, true); }
void BM_Optimized_Cut(benchmark::State& state) {
  RunCase(state, true, true);
}
void BM_Optimized_NoCut(benchmark::State& state) {
  RunCase(state, true, false);
}

BENCHMARK(BM_Original)->Arg(512)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optimized_Cut)->Arg(512)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optimized_NoCut)->Arg(512)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace exdl::bench
