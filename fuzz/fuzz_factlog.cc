// libFuzzer harness for the durable fact-log scanner.
//
// Feeds arbitrary bytes through ScanFactLog. The scanner is the trust
// boundary of --data-dir recovery (DESIGN.md §15): it must never crash,
// hang, or over-allocate on hostile input; every rejection must be
// kCorruptCheckpoint — any other error code means a validation path leaked
// an internal status. A successful scan is canonical: re-encoding the
// accepted records behind a fresh header and rescanning must accept every
// byte (no torn tail) and reproduce the same records.
//
// Build with -DEXDL_FUZZ=ON. Under Clang this links libFuzzer; elsewhere
// EXDL_FUZZ_STANDALONE provides a main() that replays files given on the
// command line (used by the CI fuzz smoke job).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "durability/fact_log.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  exdl::Result<exdl::durability::FactLogScan> scan =
      exdl::durability::ScanFactLog(bytes);
  if (!scan.ok()) {
    if (scan.status().code() != exdl::StatusCode::kCorruptCheckpoint) {
      __builtin_trap();
    }
    return 0;
  }
  if (scan->valid_bytes + scan->truncated_tail_bytes != bytes.size()) {
    __builtin_trap();  // every byte is either valid or torn tail
  }
  std::string reencoded = exdl::durability::EncodeFactLogHeader();
  for (const exdl::durability::FactRecord& record : scan->records) {
    reencoded +=
        exdl::durability::EncodeFactRecord(record.generation, record.source);
  }
  exdl::Result<exdl::durability::FactLogScan> rescan =
      exdl::durability::ScanFactLog(reencoded);
  if (!rescan.ok() || rescan->truncated_tail_bytes != 0 ||
      !(rescan->records == scan->records)) {
    __builtin_trap();  // accepted logs must round-trip canonically
  }
  return 0;
}

#ifdef EXDL_FUZZ_STANDALONE
// Minimal replay driver for compilers without -fsanitize=fuzzer.
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::cout << argv[i] << ": ok\n";
  }
  return 0;
}
#endif  // EXDL_FUZZ_STANDALONE
