// libFuzzer harness for the lexer + parser.
//
// Feeds arbitrary bytes through ParseProgram and, when parsing succeeds,
// round-trips the printed program through the parser again. The parser must
// never crash, hang, or allocate unboundedly: the governance limits
// (kMaxSourceBytes, kMaxIdentifierLength, kMaxAtomArgs, kMaxBodyLiterals,
// kMaxClauses) turn adversarial input into kInvalidArgument instead.
//
// Build with -DEXDL_FUZZ=ON. Under Clang this links libFuzzer; elsewhere
// EXDL_FUZZ_STANDALONE provides a main() that replays files given on the
// command line (used by the CI fuzz smoke job).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "ast/printer.h"
#include "parser/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  exdl::ContextPtr ctx = std::make_shared<exdl::Context>();
  exdl::Result<exdl::ParsedUnit> parsed = exdl::ParseProgram(source, ctx);
  if (!parsed.ok()) return 0;

  // Round-trip: printing a successfully parsed program must re-parse.
  std::string printed = exdl::ToString(parsed->program);
  for (const exdl::Atom& fact : parsed->facts) {
    printed += exdl::ToString(*ctx, fact) + ".\n";
  }
  exdl::ContextPtr ctx2 = std::make_shared<exdl::Context>();
  exdl::Result<exdl::ParsedUnit> reparsed = exdl::ParseProgram(printed, ctx2);
  if (!reparsed.ok()) __builtin_trap();
  return 0;
}

#ifdef EXDL_FUZZ_STANDALONE
// Minimal replay driver for compilers without -fsanitize=fuzzer.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::cout << argv[i] << ": ok\n";
  }
  return 0;
}
#endif  // EXDL_FUZZ_STANDALONE
