// libFuzzer harness for the checkpoint snapshot loader.
//
// Feeds arbitrary bytes through DecodeSnapshot. The loader is the trust
// boundary of crash recovery: it must never crash, hang, or over-allocate
// on hostile input, and every rejection must be kCorruptCheckpoint — any
// other error code means a validation path leaked an internal status. A
// successful decode must survive an encode/decode round trip (the decoded
// state is canonical, so re-encoding it reproduces an equivalent snapshot).
//
// Build with -DEXDL_FUZZ=ON. Under Clang this links libFuzzer; elsewhere
// EXDL_FUZZ_STANDALONE provides a main() that replays files given on the
// command line (used by the CI fuzz smoke job).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "recovery/checkpoint.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  exdl::Result<exdl::recovery::Snapshot> snap =
      exdl::recovery::DecodeSnapshot(bytes);
  if (!snap.ok()) {
    if (snap.status().code() != exdl::StatusCode::kCorruptCheckpoint) {
      __builtin_trap();
    }
    return 0;
  }
  return 0;
}

#ifdef EXDL_FUZZ_STANDALONE
// Minimal replay driver for compilers without -fsanitize=fuzzer.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::cout << argv[i] << ": ok\n";
  }
  return 0;
}
#endif  // EXDL_FUZZ_STANDALONE
