// exdlc — command-line front end to the ExDatalog optimizer and engine.
//
//   exdlc optimize <file> [--sagiv] [--optimistic] [--magic]
//                          [--no-adorn] [--no-project] [--no-components]
//                          [--no-delete]
//       Print the optimized program and the per-phase report.
//
//   exdlc run <file> [--naive] [--no-cut] [--optimize] [--threads N]
//                    [--deadline-ms N] [--max-tuples N] [--max-bytes N]
//       Evaluate the program over the facts in the same file and print
//       the query answers plus engine statistics. The budget flags bound
//       the run: wall-clock deadline, total derived-tuple count, and
//       tuple-arena bytes. A tripped budget (or Ctrl-C) stops evaluation
//       at a round boundary, prints the answers computed so far from the
//       consistent partial database, and exits nonzero (see below).
//
//   exdlc grammar <file>
//       For a binary chain program: print the grammar, regularity
//       analysis, and (when possible) the Theorem 3.3 monadic program.
//
//   exdlc plan <file>
//       Print the compiled join plan of every rule.
//
//   exdlc explain <file> "<fact>"
//       Evaluate with provenance recording and print the derivation tree
//       of the given ground fact (e.g. exdlc explain tc.dl "tc(n0, n2)").
//
//   exdlc check <file1> <file2> [--trials N]
//       Randomized query-equivalence check of two programs (shared
//       predicate vocabulary; facts in the files are ignored).
//
// Exit codes:
//   0  success
//   1  error (I/O, parse, unsafe program, evaluation failure)
//   2  usage
//   3  check: programs differ
//   4  run: --deadline-ms exceeded (partial answers were printed)
//   5  run: --max-tuples / --max-bytes exhausted (partial answers printed)
//   6  run/optimize: cancelled by SIGINT (partial answers printed)

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "equiv/random_check.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "grammar/chain.h"
#include "grammar/monadic.h"
#include "grammar/regularity.h"
#include "parser/parser.h"
#include "transform/magic.h"
#include "util/cancellation.h"

namespace exdl {
namespace {

/// Raised by the SIGINT handler; polled cooperatively by the evaluator and
/// the optimizer. CancellationToken::Cancel is a single atomic store, so it
/// is async-signal-safe.
CancellationToken g_interrupted;

extern "C" void HandleInterrupt(int) { g_interrupted.Cancel(); }

void InstallInterruptHandler() { std::signal(SIGINT, HandleInterrupt); }

/// Maps a budget-trip status to the documented exit code.
int ExitCodeFor(const Status& termination) {
  switch (termination.code()) {
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    default:
      return 1;
  }
}

int Usage() {
  std::cerr << "usage: exdlc optimize|run|grammar|check <file> [flags]\n"
               "       see the header of tools/exdlc.cc for details\n";
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

/// Returns the value following `flag` (e.g. "--threads 4"), or
/// `fallback` when absent. Exits with usage on a missing/bad value.
uint32_t FlagValue(const std::vector<std::string>& args,
                   const std::string& flag, uint32_t fallback) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    try {
      unsigned long v = std::stoul(args[i + 1]);
      if (v == 0 || v > 1024) throw std::out_of_range("range");
      return static_cast<uint32_t>(v);
    } catch (...) {
      std::cerr << flag << " requires a positive integer, got '"
                << args[i + 1] << "'\n";
      std::exit(2);
    }
  }
  return fallback;
}

/// 64-bit variant for budget flags (tuple and byte counts routinely exceed
/// FlagValue's 1024 cap). Returns `fallback` (0 = no budget) when absent.
uint64_t FlagValue64(const std::vector<std::string>& args,
                     const std::string& flag, uint64_t fallback) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    try {
      unsigned long long v = std::stoull(args[i + 1]);
      if (v == 0) throw std::out_of_range("range");
      return static_cast<uint64_t>(v);
    } catch (...) {
      std::cerr << flag << " requires a positive integer, got '"
                << args[i + 1] << "'\n";
      std::exit(2);
    }
  }
  return fallback;
}

int CmdOptimize(const std::string& path,
                const std::vector<std::string>& flags) {
  // Install before any I/O or parsing so an early Ctrl-C is not lost
  // (background shells start children with SIGINT ignored).
  InstallInterruptHandler();
  Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(*source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  OptimizerOptions options;
  options.adorn = !HasFlag(flags, "--no-adorn");
  options.push_projections = !HasFlag(flags, "--no-project");
  options.extract_components = !HasFlag(flags, "--no-components");
  options.delete_rules = !HasFlag(flags, "--no-delete");
  options.deletion.use_sagiv = HasFlag(flags, "--sagiv");
  options.deletion.use_optimistic = HasFlag(flags, "--optimistic");
  options.apply_magic = HasFlag(flags, "--magic");
  options.cancellation = &g_interrupted;
  Result<OptimizedProgram> optimized =
      OptimizeExistential(parsed->program, options);
  if (!optimized.ok()) {
    std::cerr << optimized.status().ToString() << "\n";
    return 1;
  }
  std::cout << ToString(optimized->program);
  if (optimized->magic_seed) {
    std::cout << "% seed fact: " << ToString(*ctx, *optimized->magic_seed)
              << ".\n";
  }
  std::cerr << "\n" << optimized->report.ToString();
  if (!optimized->termination.ok()) {
    std::cerr << optimized->termination.ToString() << "\n";
    return ExitCodeFor(optimized->termination);
  }
  return 0;
}

int CmdRun(const std::string& path, const std::vector<std::string>& flags) {
  InstallInterruptHandler();
  Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(*source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  Database edb;
  for (const Atom& fact : parsed->facts) (void)edb.AddFact(fact);
  Program program = parsed->program.Clone();
  if (HasFlag(flags, "--optimize")) {
    Result<OptimizedProgram> optimized = OptimizeExistential(program);
    if (!optimized.ok()) {
      std::cerr << optimized.status().ToString() << "\n";
      return 1;
    }
    program = std::move(optimized->program);
  }
  EvalOptions options;
  options.seminaive = !HasFlag(flags, "--naive");
  options.boolean_cut = !HasFlag(flags, "--no-cut");
  options.num_threads = FlagValue(flags, "--threads", 1);
  options.budget.deadline_ms = FlagValue64(flags, "--deadline-ms", 0);
  options.budget.max_tuples = FlagValue64(flags, "--max-tuples", 0);
  options.budget.max_arena_bytes = FlagValue64(flags, "--max-bytes", 0);
  options.budget.cancellation = &g_interrupted;
  Result<EvalResult> result = Evaluate(program, edb, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  for (const auto& row : result->answers) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) std::cout << "\t";
      std::cout << ctx->SymbolName(row[i]);
    }
    std::cout << "\n";
  }
  std::cerr << result->answers.size() << " answer(s)   ["
            << result->stats.ToString() << "]\n";
  if (!result->termination.ok()) {
    std::cerr << "budget tripped ("
              << BudgetKindName(result->stats.budget_tripped)
              << "): " << result->termination.ToString()
              << "\nanswers above reflect the consistent partial database "
                 "as of the last completed round\n";
    return ExitCodeFor(result->termination);
  }
  return 0;
}

int CmdGrammar(const std::string& path) {
  Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(*source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  Result<Cfg> grammar = ChainProgramToGrammar(parsed->program);
  if (!grammar.ok()) {
    std::cerr << grammar.status().ToString() << "\n";
    return 1;
  }
  std::cout << grammar->ToString();
  std::cout << "% self-embedding:   "
            << (IsSelfEmbedding(*grammar) ? "yes" : "no") << "\n";
  std::cout << "% strongly regular: "
            << (IsStronglyRegular(*grammar) ? "yes" : "no") << "\n";
  Result<Program> monadic = MonadicEquivalent(parsed->program);
  if (monadic.ok()) {
    std::cout << "% Theorem 3.3 monadic program:\n" << ToString(*monadic);
  } else {
    std::cout << "% no monadic conversion: " << monadic.status().ToString()
              << "\n";
  }
  return 0;
}

int CmdCheck(const std::string& path1, const std::string& path2,
             const std::vector<std::string>& flags) {
  Result<std::string> s1 = ReadFile(path1);
  Result<std::string> s2 = ReadFile(path2);
  if (!s1.ok() || !s2.ok()) {
    std::cerr << "cannot read inputs\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> p1 = ParseProgram(*s1, ctx);
  Result<ParsedUnit> p2 = ParseProgram(*s2, ctx);
  if (!p1.ok() || !p2.ok()) {
    std::cerr << (p1.ok() ? p2.status() : p1.status()).ToString() << "\n";
    return 1;
  }
  RandomCheckOptions options;
  for (size_t i = 0; i + 1 < flags.size(); ++i) {
    if (flags[i] == "--trials") options.trials = std::stoi(flags[i + 1]);
  }
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(p1->program, p2->program, options);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  if (report->equivalent) {
    std::cout << "no difference found in " << report->trials_run
              << " random trials\n";
    return 0;
  }
  std::cout << "NOT equivalent:\n" << report->counterexample << "\n";
  return 3;
}

int CmdPlan(const std::string& path) {
  Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(*source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  for (const Rule& rule : parsed->program.rules()) {
    std::cout << ToString(*ctx, rule) << "\n";
    Result<RulePlan> plan = CompileRule(rule, PlanOptions());
    if (!plan.ok()) {
      std::cout << "  (uncompilable: " << plan.status().ToString() << ")\n";
      continue;
    }
    std::cout << PlanToString(*ctx, *plan);
  }
  return 0;
}

int CmdExplain(const std::string& path, const std::string& fact_text) {
  Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> parsed = ParseProgram(*source, ctx);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  Result<Atom> fact = ParseAtom(fact_text, ctx.get());
  if (!fact.ok() || !fact->IsGround()) {
    std::cerr << "explain needs a ground fact, e.g. \"tc(n0, n2)\"\n";
    return 1;
  }
  Database edb;
  for (const Atom& f : parsed->facts) (void)edb.AddFact(f);
  EvalOptions options;
  options.record_provenance = true;
  Result<EvalResult> result = Evaluate(parsed->program, edb, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::vector<Value> row;
  for (const Term& t : fact->args) row.push_back(t.id());
  Result<std::string> explained =
      ExplainFact(parsed->program, *result, fact->pred, row);
  if (!explained.ok()) {
    std::cerr << explained.status().ToString() << "\n";
    return 1;
  }
  std::cout << *explained;
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (command == "optimize") {
    return CmdOptimize(rest[0], rest);
  }
  if (command == "run") {
    return CmdRun(rest[0], rest);
  }
  if (command == "grammar") {
    return CmdGrammar(rest[0]);
  }
  if (command == "plan") {
    return CmdPlan(rest[0]);
  }
  if (command == "explain") {
    if (rest.size() < 2) return Usage();
    return CmdExplain(rest[0], rest[1]);
  }
  if (command == "check") {
    if (rest.size() < 2) return Usage();
    return CmdCheck(rest[0], rest[1], rest);
  }
  return Usage();
}

}  // namespace
}  // namespace exdl

int main(int argc, char** argv) { return exdl::Main(argc, argv); }
