// exdlc — command-line front end to the ExDatalog optimizer and engine.
//
//   exdlc optimize <file> [--sagiv] [--optimistic] [--magic]
//                          [--no-adorn] [--no-project] [--no-components]
//                          [--no-delete] [--trace] [--metrics-json FILE]
//       Print the optimized program and the per-phase report.
//
//   exdlc run <file...> [--jobs N] [--naive] [--no-cut] [--optimize]
//                    [--threads N] [--representation auto|tuple|bitset]
//                    [--deadline-ms N] [--max-tuples N] [--max-bytes N]
//                    [--checkpoint-dir DIR] [--checkpoint-every-rounds N]
//                    [--resume FILE] [--trace] [--metrics-json FILE]
//       Evaluate the program over the facts in the same file and print
//       the query answers plus engine statistics. The budget flags bound
//       the run: wall-clock deadline, total derived-tuple count, and
//       tuple-arena bytes (EXDL_BUDGET_DEADLINE_MS / EXDL_BUDGET_MAX_TUPLES
//       / EXDL_BUDGET_MAX_ARENA_BYTES fill limits the flags leave unset;
//       see EvalBudget::FromEnv). A tripped budget (or Ctrl-C) stops
//       evaluation at a round boundary, prints the answers computed so far
//       from the consistent partial database, and exits nonzero (below).
//       With --checkpoint-dir, every Nth round boundary (default: every
//       round) writes DIR/checkpoint.exdl atomically; --resume FILE reloads
//       such a snapshot and continues the fixpoint from the recorded round,
//       producing output byte-identical to an uninterrupted run. The resumed
//       invocation must use the same program file and the same
//       --optimize/--naive/--no-cut configuration (the snapshot carries a
//       program fingerprint and is refused otherwise).
//       With --jobs N (or more than one input file) the files run as a
//       batch through a shared QueryService (src/service/): one shared
//       interning context, a warm ProgramCache, and N parallel session
//       workers. Output is printed per file in submission order under a
//       "== <file> ==" header and is byte-identical for any N (compiles
//       pass a ticket-ordered turnstile). --metrics-json then writes the
//       merged service document (with a "service" object); checkpoint/
//       resume flags are rejected in batch mode.
//       --representation picks the physical executor (DESIGN.md §14):
//       "tuple" forces the generic arena/index path, "bitset" runs
//       eligible monadic rules through the word-packed kernels, "auto"
//       (the default) behaves like bitset with per-rule fallback. Answers
//       and all pre-existing output are byte-identical across modes; only
//       the telemetry document's storage.representation counters differ.
//       Anything else exits 2.
//
//   exdlc grammar <file>
//       For a binary chain program: print the grammar, regularity
//       analysis, and (when possible) the Theorem 3.3 monadic program.
//
//   exdlc plan <file>
//       Print the compiled join plan of every rule.
//
//   exdlc explain <file> "<fact>"
//       Evaluate with provenance recording and print the derivation tree
//       of the given ground fact (e.g. exdlc explain tc.dl "tc(n0, n2)").
//
//   exdlc check <file1> <file2> [--trials N]
//       Randomized query-equivalence check of two programs (shared
//       predicate vocabulary; facts in the files are ignored).
//
//   exdlc connect <file...> (--socket PATH | --tcp HOST:PORT)
//                 [--tenant NAME] [--deadline-ms N] [--max-tuples N]
//                 [--max-bytes N] [--retries N] [--retry-base-ms N]
//                 [--load-facts FILE] [--stats] [--shutdown]
//                 [--register] [--poll ID] [--unregister ID]
//                 [--representation auto|tuple|bitset]
//       Run the files as a batch against a running exdld daemon
//       (tools/exdld.cc). Output is per file under a "== <file> =="
//       header, byte-identical to `exdlc run <file...> --jobs 1` against
//       the same (initially empty) database. Budget flags are *requests*
//       clamped by the daemon's admission policy. Backpressure
//       (RETRY_LATER) and torn connections (daemon crash/restart) are
//       retried with jittered exponential backoff up to --retries times;
//       a torn connection re-runs the whole batch, which is safe because
//       completed queries are program-cache hits and interning order is
//       replayed. --load-facts loads an EDB file first; --stats prints
//       the daemon telemetry document after the batch; --shutdown asks
//       the daemon to drain.
//       Standing queries (DESIGN.md §16, protocol v2): --register installs
//       each input file as a maintained view instead of running it once —
//       the daemon prints the seed answers and a standing id, then keeps
//       the materialized result current across later LOAD_FACTS via
//       delta-driven semi-naive maintenance. --poll ID prints a view's
//       current answers (no re-evaluation; byte-identical to a cold run of
//       the same source at the same generation) plus maintenance stats on
//       stderr; --unregister ID drops the view. Views are not tied to the
//       registering connection: register in one invocation, poll from
//       another. --representation requests the physical executor for the
//       submitted/registered queries (server default when omitted).
//
//   exdlc fault-sites
//       Print every registered fault-injection site, one per line (the
//       single source of truth consumed by tools/fault_sweep.sh).
//
// Observability flags (optimize and run):
//   --trace              print the span tree (per-phase / per-round / per-
//                        rule timings) to stderr after the command
//   --metrics-json FILE  write the machine-readable telemetry document
//                        (DESIGN.md §10; schema tools/metrics_schema.json)
//
// Flags are strict: an unknown flag, or a flag used with a subcommand that
// does not accept it (e.g. a budget flag on `optimize`), exits 2.
//
// Exit codes:
//   0  success
//   1  error (I/O, parse, unsafe program, evaluation failure)
//   2  usage
//   3  check: programs differ
//   4  run: --deadline-ms exceeded (partial answers were printed)
//   5  run: --max-tuples / --max-bytes exhausted (partial answers printed)
//   6  run/optimize: cancelled by SIGINT (partial answers printed)
//   7  run: --resume snapshot failed CRC or structural validation
//   8  connect: cannot reach the exdld daemon (not running / refused),
//      or retries exhausted against an unavailable daemon
//   9  connect: the daemon rejected the fact load (admission / quota);
//      retrying without changing the load or the server policy will not
//      help. A kCorruptCheckpoint from the daemon (durable EDB failed
//      recovery validation) maps to 7, same as a bad --resume snapshot.
//
// Fault injection (testing): EXDL_FAULT_SPEC="<site>:<n>[:abort]" arms one
// deterministic fault that fires on the Nth hit of the named site (see
// recovery/fault.h for the registry). A malformed spec exits 2.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ast/printer.h"
#include "core/engine.h"
#include "daemon/client.h"
#include "equiv/random_check.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "grammar/chain.h"
#include "grammar/monadic.h"
#include "grammar/regularity.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "recovery/atomic_file.h"
#include "recovery/fault.h"
#include "service/answer_text.h"
#include "service/query_service.h"
#include "util/cancellation.h"

namespace exdl {
namespace {

/// Raised by the SIGINT handler; polled cooperatively by the evaluator and
/// the optimizer. CancellationToken::Cancel is a single atomic store, so it
/// is async-signal-safe.
CancellationToken g_interrupted;

extern "C" void HandleInterrupt(int) { g_interrupted.Cancel(); }

void InstallInterruptHandler() { std::signal(SIGINT, HandleInterrupt); }

/// Maps a budget-trip status to the documented exit code.
int ExitCodeFor(const Status& termination) {
  switch (termination.code()) {
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    case StatusCode::kCorruptCheckpoint:
      return 7;
    default:
      return 1;
  }
}

int Usage() {
  std::cerr << "usage: exdlc optimize|run|grammar|check|connect <file> "
               "[flags]\n"
               "       exdlc fault-sites\n"
               "       see the header of tools/exdlc.cc for details\n";
  return 2;
}

// ---------------------------------------------------------------------------
// Flag table. Every flag of every subcommand is declared once here; parsing
// is strict — an unknown flag, a flag on the wrong subcommand, or a missing
// value exits 2. Adding a flag means adding a row, nothing else.

enum : uint32_t {
  kCmdOptimize = 1u << 0,
  kCmdRun = 1u << 1,
  kCmdCheck = 1u << 2,
  kCmdConnect = 1u << 3,
};

struct FlagSpec {
  const char* name;
  bool takes_value;
  uint32_t commands;  ///< Bitmask of subcommands that accept the flag.
};

constexpr FlagSpec kFlagTable[] = {
    // optimizer pipeline toggles
    {"--no-adorn", false, kCmdOptimize},
    {"--no-project", false, kCmdOptimize},
    {"--no-components", false, kCmdOptimize},
    {"--no-delete", false, kCmdOptimize},
    {"--sagiv", false, kCmdOptimize},
    {"--optimistic", false, kCmdOptimize},
    {"--magic", false, kCmdOptimize},
    // evaluation
    {"--naive", false, kCmdRun},
    {"--no-cut", false, kCmdRun},
    {"--optimize", false, kCmdRun},
    {"--threads", true, kCmdRun},
    {"--jobs", true, kCmdRun},
    {"--representation", true, kCmdRun | kCmdConnect},
    // budgets (requests under `connect`: the daemon clamps them)
    {"--deadline-ms", true, kCmdRun | kCmdConnect},
    {"--max-tuples", true, kCmdRun | kCmdConnect},
    {"--max-bytes", true, kCmdRun | kCmdConnect},
    // daemon client
    {"--socket", true, kCmdConnect},
    {"--tcp", true, kCmdConnect},
    {"--tenant", true, kCmdConnect},
    {"--retries", true, kCmdConnect},
    {"--retry-base-ms", true, kCmdConnect},
    {"--load-facts", true, kCmdConnect},
    {"--stats", false, kCmdConnect},
    {"--shutdown", false, kCmdConnect},
    // standing queries (protocol v2; DESIGN.md §16)
    {"--register", false, kCmdConnect},
    {"--unregister", true, kCmdConnect},
    {"--poll", true, kCmdConnect},
    // durability
    {"--checkpoint-dir", true, kCmdRun},
    {"--checkpoint-every-rounds", true, kCmdRun},
    {"--resume", true, kCmdRun},
    // equivalence checking
    {"--trials", true, kCmdCheck},
    // observability
    {"--trace", false, kCmdOptimize | kCmdRun},
    {"--metrics-json", true, kCmdOptimize | kCmdRun},
};

const FlagSpec* FindFlag(const std::string& arg) {
  for (const FlagSpec& spec : kFlagTable) {
    if (arg == spec.name) return &spec;
  }
  return nullptr;
}

/// Strict pass over the argument vector: every token starting with "--"
/// must be a known flag accepted by `command`; value-taking flags consume
/// the next token. Positional arguments (paths, fact text) pass through.
/// Exits 2 on violation.
void ValidateFlags(const std::vector<std::string>& args,
                   const std::string& command, uint32_t command_mask) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) continue;  // positional
    const FlagSpec* spec = FindFlag(arg);
    if (spec == nullptr) {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
    if ((spec->commands & command_mask) == 0) {
      std::cerr << arg << " is not a valid flag for '" << command << "'\n";
      std::exit(2);
    }
    if (spec->takes_value) {
      if (i + 1 >= args.size()) {
        std::cerr << arg << " requires a value\n";
        std::exit(2);
      }
      ++i;  // skip the value token
    }
  }
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

/// Returns the value following `flag` (e.g. "--threads 4"), or
/// `fallback` when absent. Exits with usage on a missing/bad value.
uint32_t FlagValue(const std::vector<std::string>& args,
                   const std::string& flag, uint32_t fallback) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    try {
      unsigned long v = std::stoul(args[i + 1]);
      if (v == 0 || v > 1024) throw std::out_of_range("range");
      return static_cast<uint32_t>(v);
    } catch (...) {
      std::cerr << flag << " requires a positive integer, got '"
                << args[i + 1] << "'\n";
      std::exit(2);
    }
  }
  return fallback;
}

/// 64-bit variant for budget flags (tuple and byte counts routinely exceed
/// FlagValue's 1024 cap). Returns `fallback` (0 = no budget) when absent.
uint64_t FlagValue64(const std::vector<std::string>& args,
                     const std::string& flag, uint64_t fallback) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    try {
      unsigned long long v = std::stoull(args[i + 1]);
      if (v == 0) throw std::out_of_range("range");
      return static_cast<uint64_t>(v);
    } catch (...) {
      std::cerr << flag << " requires a positive integer, got '"
                << args[i + 1] << "'\n";
      std::exit(2);
    }
  }
  return fallback;
}

/// String-valued flag (e.g. "--metrics-json out.json"), `fallback` when
/// absent. ValidateFlags already guaranteed the value token exists.
std::string FlagString(const std::vector<std::string>& args,
                       const std::string& flag, std::string fallback) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    return args[i + 1];
  }
  return fallback;
}

/// Parses --representation. Absent = auto; an unknown value exits 2 like
/// every other flag violation.
Representation FlagRepresentation(const std::vector<std::string>& flags) {
  const std::string text = FlagString(flags, "--representation", "auto");
  Representation r = Representation::kAuto;
  if (!ParseRepresentation(text, &r)) {
    std::cerr << "--representation must be auto, tuple, or bitset, got '"
              << text << "'\n";
    std::exit(2);
  }
  return r;
}

/// Emits the observability outputs after a command: the span tree on
/// stderr for --trace, the telemetry JSON document for --metrics-json.
/// Returns 0, or 1 when the JSON file cannot be written.
int EmitObservability(Engine& engine, const std::vector<std::string>& flags,
                      const std::string& command, const std::string& path) {
  if (HasFlag(flags, "--trace") && engine.telemetry() != nullptr) {
    std::cerr << obs::RenderTrace(engine.telemetry()->trace());
  }
  const std::string metrics_path =
      FlagString(flags, "--metrics-json", std::string());
  if (!metrics_path.empty()) {
    // Atomic (temp + fsync + rename) so a crash mid-emit never leaves a
    // truncated JSON document for a dashboard scraper to choke on.
    Status written = recovery::AtomicWriteFile(
        metrics_path, engine.TelemetryJson(command, path));
    if (!written.ok()) {
      std::cerr << "cannot write " << metrics_path << ": "
                << written.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

int CmdOptimize(const std::string& path,
                const std::vector<std::string>& flags) {
  // Install before any I/O or parsing so an early Ctrl-C is not lost
  // (background shells start children with SIGINT ignored).
  InstallInterruptHandler();
  EngineOptions options;
  options.optimizer.adorn = !HasFlag(flags, "--no-adorn");
  options.optimizer.push_projections = !HasFlag(flags, "--no-project");
  options.optimizer.extract_components = !HasFlag(flags, "--no-components");
  options.optimizer.delete_rules = !HasFlag(flags, "--no-delete");
  options.optimizer.deletion.use_sagiv = HasFlag(flags, "--sagiv");
  options.optimizer.deletion.use_optimistic = HasFlag(flags, "--optimistic");
  options.optimizer.apply_magic = HasFlag(flags, "--magic");
  options.optimizer.cancellation = &g_interrupted;
  options.collect_telemetry =
      HasFlag(flags, "--trace") || HasFlag(flags, "--metrics-json");
  Engine engine(std::move(options));
  Status loaded = engine.LoadFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }
  Status optimized = engine.Optimize();
  if (!optimized.ok()) {
    std::cerr << optimized.ToString() << "\n";
    return 1;
  }
  std::cout << ToString(engine.program());
  if (engine.magic_seed()) {
    std::cout << "% seed fact: "
              << ToString(*engine.ctx(), *engine.magic_seed()) << ".\n";
  }
  std::cerr << "\n" << engine.report().ToString();
  int obs_rc = EmitObservability(engine, flags, "optimize", path);
  if (!engine.optimize_termination().ok()) {
    std::cerr << engine.optimize_termination().ToString() << "\n";
    return ExitCodeFor(engine.optimize_termination());
  }
  return obs_rc;
}

int CmdRun(const std::string& path, const std::vector<std::string>& flags) {
  InstallInterruptHandler();
  EngineOptions options;
  options.eval.seminaive = !HasFlag(flags, "--naive");
  options.eval.boolean_cut = !HasFlag(flags, "--no-cut");
  options.eval.num_threads = FlagValue(flags, "--threads", 1);
  options.eval.representation = FlagRepresentation(flags);
  // Budget precedence: explicit flags, then EXDL_BUDGET_* environment
  // variables for whatever the flags left unset (see EvalBudget::FromEnv).
  options.eval.budget = EvalBudget::FromEnv(EvalBudget::FromFlags(
      FlagValue64(flags, "--deadline-ms", 0),
      FlagValue64(flags, "--max-tuples", 0),
      FlagValue64(flags, "--max-bytes", 0), &g_interrupted));
  options.optimizer.cancellation = &g_interrupted;
  options.collect_telemetry =
      HasFlag(flags, "--trace") || HasFlag(flags, "--metrics-json");
  options.checkpoint.directory =
      FlagString(flags, "--checkpoint-dir", std::string());
  options.checkpoint.every_rounds =
      FlagValue(flags, "--checkpoint-every-rounds", 1);
  Engine engine(std::move(options));
  Status loaded = engine.LoadFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }
  if (HasFlag(flags, "--optimize")) {
    Status optimized = engine.Optimize();
    if (!optimized.ok()) {
      std::cerr << optimized.ToString() << "\n";
      return 1;
    }
  }
  // Resume after optimization so the snapshot fingerprint is checked
  // against the program actually being evaluated.
  const std::string resume_path =
      FlagString(flags, "--resume", std::string());
  if (!resume_path.empty()) {
    Status resumed = engine.Resume(resume_path);
    if (!resumed.ok()) {
      std::cerr << resumed.ToString() << "\n";
      return ExitCodeFor(resumed);
    }
  }
  Result<EvalResult> result = engine.Run();
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << RenderAnswerRows(*engine.ctx(), result->answers);
  std::cerr << result->answers.size() << " answer(s)   ["
            << result->stats.ToString() << "]\n";
  int obs_rc = EmitObservability(engine, flags, "run", path);
  if (!result->termination.ok()) {
    std::cerr << "budget tripped ("
              << BudgetKindName(result->stats.budget_tripped)
              << "): " << result->termination.ToString()
              << "\nanswers above reflect the consistent partial database "
                 "as of the last completed round\n";
    return ExitCodeFor(result->termination);
  }
  return obs_rc;
}

/// `exdlc run` in batch mode: every input file becomes one query of a
/// shared QueryService. Used when --jobs is given or several files are
/// listed. Per-file answers print in submission order (deterministic for
/// any worker count); --metrics-json writes the merged service document.
int CmdRunService(const std::vector<std::string>& files,
                  const std::vector<std::string>& flags) {
  InstallInterruptHandler();
  if (!FlagString(flags, "--checkpoint-dir", std::string()).empty() ||
      !FlagString(flags, "--resume", std::string()).empty()) {
    std::cerr << "--checkpoint-dir/--resume are not supported with --jobs\n";
    return 2;
  }
  ServiceOptions options;
  options.num_workers = FlagValue(flags, "--jobs", 1);
  options.eval.seminaive = !HasFlag(flags, "--naive");
  options.eval.boolean_cut = !HasFlag(flags, "--no-cut");
  options.eval.num_threads = FlagValue(flags, "--threads", 1);
  // Flag-set limits only; the service resolves EXDL_BUDGET_* per session
  // via EvalBudget::FromEnv.
  options.eval.budget = EvalBudget::FromFlags(
      FlagValue64(flags, "--deadline-ms", 0),
      FlagValue64(flags, "--max-tuples", 0),
      FlagValue64(flags, "--max-bytes", 0), &g_interrupted);
  options.compile.optimize = HasFlag(flags, "--optimize");
  options.compile.optimizer.cancellation = &g_interrupted;
  options.eval.representation = FlagRepresentation(flags);
  options.compile.seminaive = options.eval.seminaive;
  options.compile.boolean_cut = options.eval.boolean_cut;
  // Mirrored into the cache key: a cached artifact is only reused by
  // sessions running the same representation.
  options.compile.representation = options.eval.representation;
  options.collect_telemetry =
      HasFlag(flags, "--trace") || HasFlag(flags, "--metrics-json");
  std::vector<QueryRequest> requests;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    QueryRequest request;
    request.source = buffer.str();
    request.name = file;
    requests.push_back(std::move(request));
  }
  QueryService service(std::move(options));
  const std::vector<QueryService::Ticket> tickets =
      service.SubmitBatch(std::move(requests));
  int rc = 0;
  for (QueryService::Ticket ticket : tickets) {
    QueryResponse response = service.Await(ticket);
    std::cout << "== " << response.name << " ==\n";
    if (!response.status.ok()) {
      std::cerr << response.name << ": " << response.status.ToString() << "\n";
      rc = std::max(rc, 1);
      continue;
    }
    std::cout << RenderAnswerRows(*service.ctx(), response.result.answers);
    std::cerr << response.name << ": " << response.result.answers.size()
              << " answer(s)   [" << response.result.stats.ToString() << "]"
              << (response.cache_hit ? "   (cached program)" : "") << "\n";
    if (HasFlag(flags, "--trace") && response.telemetry != nullptr) {
      std::cerr << obs::RenderTrace(response.telemetry->trace());
    }
    if (!response.result.termination.ok()) {
      std::cerr << response.name << ": budget tripped ("
                << BudgetKindName(response.result.stats.budget_tripped)
                << "): " << response.result.termination.ToString() << "\n";
      rc = std::max(rc, ExitCodeFor(response.result.termination));
    }
  }
  const std::string metrics_path =
      FlagString(flags, "--metrics-json", std::string());
  if (!metrics_path.empty()) {
    Status written =
        recovery::AtomicWriteFile(metrics_path, service.MetricsJson());
    if (!written.ok()) {
      std::cerr << "cannot write " << metrics_path << ": "
                << written.ToString() << "\n";
      rc = std::max(rc, 1);
    }
  }
  return rc;
}

/// `exdlc connect`: run the input files as a batch against an exdld
/// daemon. Stdout is byte-identical to CmdRunService with --jobs 1 (both
/// ends render through RenderAnswerRows; the batch runner replays the
/// submission sequence on retry).
int CmdConnect(const std::vector<std::string>& files,
               const std::vector<std::string>& flags) {
  daemon::Endpoint endpoint;
  endpoint.socket_path = FlagString(flags, "--socket", std::string());
  const std::string tcp = FlagString(flags, "--tcp", std::string());
  if (!tcp.empty()) {
    const size_t colon = tcp.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--tcp requires HOST:PORT\n";
      return 2;
    }
    endpoint.use_tcp = true;
    endpoint.tcp_host = tcp.substr(0, colon);
    try {
      endpoint.tcp_port =
          static_cast<uint16_t>(std::stoul(tcp.substr(colon + 1)));
    } catch (...) {
      std::cerr << "--tcp requires HOST:PORT\n";
      return 2;
    }
  } else if (endpoint.socket_path.empty()) {
    std::cerr << "connect requires --socket PATH or --tcp HOST:PORT\n";
    return 2;
  }

  daemon::BatchOptions options;
  options.tenant = FlagString(flags, "--tenant", std::string());
  options.deadline_ms = FlagValue64(flags, "--deadline-ms", 0);
  options.max_tuples = FlagValue64(flags, "--max-tuples", 0);
  options.max_bytes = FlagValue64(flags, "--max-bytes", 0);
  options.max_retries = FlagValue(flags, "--retries", 5);
  options.retry_base_ms = FlagValue(flags, "--retry-base-ms", 25);

  auto read = [](const std::string& path) -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string facts_path =
      FlagString(flags, "--load-facts", std::string());
  if (!facts_path.empty()) {
    Result<std::string> facts = read(facts_path);
    if (!facts.ok()) {
      std::cerr << facts.status().ToString() << "\n";
      return 1;
    }
    options.facts_source = std::move(*facts);
  }
  std::vector<daemon::BatchQuery> queries;
  for (const std::string& file : files) {
    Result<std::string> source = read(file);
    if (!source.ok()) {
      std::cerr << source.status().ToString() << "\n";
      return 1;
    }
    queries.push_back(daemon::BatchQuery{file, std::move(*source)});
  }

  // Standing-query mode (DESIGN.md §16): --register installs each input
  // file as a maintained view, --poll reads a view's current answers,
  // --unregister drops one. These bypass RunBatch — they are single
  // request/reply exchanges on one connection, and a standing view
  // outlives the connection anyway, so torn-connection replay semantics
  // do not apply.
  const bool do_register = HasFlag(flags, "--register");
  const uint64_t unregister_id = FlagValue64(flags, "--unregister", 0);
  const uint64_t poll_id = FlagValue64(flags, "--poll", 0);
  if (do_register || unregister_id != 0 || poll_id != 0) {
    daemon::DaemonClient client;
    Status connected = client.Connect(endpoint, options.tenant);
    if (!connected.ok()) {
      std::cerr << "exdlc: " << connected.message()
                << "\nexdlc: is exdld running? start it with: exdld "
                << (endpoint.use_tcp ? "--tcp " + tcp
                                     : "--socket " + endpoint.socket_path)
                << "\n";
      return connected.code() == StatusCode::kUnavailable ? 8 : 1;
    }
    if (!options.facts_source.empty()) {
      Status loaded = client.LoadFacts(options.facts_source);
      if (!loaded.ok()) {
        std::cerr << "exdlc: fact load failed: " << loaded.ToString() << "\n";
        return loaded.code() == StatusCode::kResourceExhausted ||
                       loaded.code() == StatusCode::kFailedPrecondition
                   ? 9
                   : loaded.code() == StatusCode::kCorruptCheckpoint ? 7 : 1;
      }
    }
    int rc = 0;
    if (do_register) {
      for (const daemon::BatchQuery& query : queries) {
        daemon::SubmitMsg submit;
        submit.name = query.name;
        submit.source = query.source;
        submit.deadline_ms = options.deadline_ms;
        submit.max_tuples = options.max_tuples;
        submit.max_bytes = options.max_bytes;
        if (HasFlag(flags, "--representation")) {
          submit.representation =
              daemon::RepresentationToWire(FlagRepresentation(flags));
        }
        daemon::RegisteredMsg registered;
        Status status = client.RegisterQuery(submit, &registered);
        if (!status.ok()) {
          std::cerr << query.name << ": " << status.ToString() << "\n";
          rc = std::max(rc, status.code() == StatusCode::kUnavailable ? 8 : 1);
          continue;
        }
        std::cout << "== " << query.name << " ==\n" << registered.answers;
        std::cerr << query.name << ": registered standing query "
                  << registered.standing_id << " at generation "
                  << registered.generation << ", " << registered.answer_count
                  << " answer(s)\n";
      }
    }
    if (poll_id != 0) {
      daemon::StandingResultMsg result;
      Status status = client.PollResult(poll_id, &result);
      if (!status.ok()) {
        std::cerr << "exdlc: poll " << poll_id << ": " << status.ToString()
                  << "\n";
        rc = std::max(rc, 1);
      } else {
        // Answers only on stdout: the byte-identity contract is that this
        // output matches a cold `exdlc run` of the same source against the
        // same generation (modulo the "== name ==" batch header).
        std::cout << result.answers;
        std::cerr << "standing " << result.standing_id << ": "
                  << result.answer_count << " answer(s) at generation "
                  << result.generation << "   ["
                  << (result.incremental != 0 ? "incremental" : "recompute")
                  << ", fallback=" << result.fallback
                  << ", delta_rounds=" << result.delta_rounds
                  << ", full_recomputes=" << result.full_recomputes
                  << ", tuples_rederived=" << result.tuples_rederived << "]\n";
      }
    }
    if (unregister_id != 0) {
      Status status = client.UnregisterQuery(unregister_id);
      if (!status.ok()) {
        std::cerr << "exdlc: unregister " << unregister_id << ": "
                  << status.ToString() << "\n";
        rc = std::max(rc, 1);
      } else {
        std::cerr << "unregistered standing query " << unregister_id << "\n";
      }
    }
    if (HasFlag(flags, "--stats")) {
      std::string json;
      Status stats = client.Stats(&json);
      if (!stats.ok()) {
        std::cerr << stats.ToString() << "\n";
        return 1;
      }
      std::cout << json << "\n";
    }
    if (HasFlag(flags, "--shutdown")) {
      Status shutdown = client.Shutdown();
      if (!shutdown.ok()) {
        std::cerr << shutdown.ToString() << "\n";
        return 1;
      }
    }
    return rc;
  }

  int rc = 0;
  if (!queries.empty() || !options.facts_source.empty()) {
    Result<daemon::BatchResult> batch =
        daemon::RunBatch(endpoint, queries, options);
    if (!batch.ok()) {
      if (batch.status().code() == StatusCode::kUnavailable) {
        std::cerr << "exdlc: " << batch.status().message()
                  << "\nexdlc: is exdld running? start it with: exdld "
                  << (endpoint.use_tcp ? "--tcp " + tcp
                                       : "--socket " + endpoint.socket_path)
                  << "\n";
        return 8;
      }
      if (batch.status().code() == StatusCode::kResourceExhausted ||
          batch.status().code() == StatusCode::kFailedPrecondition) {
        // Admission / quota rejection (e.g. --max-facts-bytes, tenant
        // policy): the daemon is healthy but refused this load. Distinct
        // from 8 so callers don't retry against a daemon that will keep
        // saying no.
        std::cerr << "exdlc: daemon rejected the fact load (admission/quota): "
                  << batch.status().message() << "\n";
        return 9;
      }
      if (batch.status().code() == StatusCode::kCorruptCheckpoint) {
        // The daemon's durable EDB failed recovery validation (DESIGN.md
        // §15) — same class of failure as a corrupt --resume snapshot.
        std::cerr << "exdlc: daemon durable state is corrupt: "
                  << batch.status().message() << "\n";
        return 7;
      }
      std::cerr << batch.status().ToString() << "\n";
      return 1;
    }
    for (const daemon::BatchQueryResult& query : batch->queries) {
      std::cout << "== " << query.name << " ==\n";
      const Status status =
          daemon::StatusFromWire(query.result.status_code,
                                 query.result.status_message);
      if (!status.ok()) {
        std::cerr << query.name << ": " << status.ToString() << "\n";
        rc = std::max(rc, 1);
        continue;
      }
      std::cout << query.result.answers;
      std::cerr << query.name << ": " << query.result.answer_count
                << " answer(s)   [" << query.result.stats_text << "]"
                << (query.result.cache_hit != 0 ? "   (cached program)" : "")
                << "\n";
      const Status termination =
          daemon::StatusFromWire(query.result.termination_code,
                                 query.result.termination_message);
      if (!termination.ok()) {
        std::cerr << query.name << ": budget tripped ("
                  << query.result.budget_kind << "): "
                  << termination.ToString() << "\n";
        rc = std::max(rc, ExitCodeFor(termination));
      }
    }
  }

  if (HasFlag(flags, "--stats") || HasFlag(flags, "--shutdown")) {
    daemon::DaemonClient client;
    Status connected = client.Connect(endpoint, options.tenant);
    if (!connected.ok()) {
      std::cerr << "exdlc: " << connected.message() << "\n";
      return connected.code() == StatusCode::kUnavailable ? 8 : 1;
    }
    if (HasFlag(flags, "--stats")) {
      std::string json;
      Status stats = client.Stats(&json);
      if (!stats.ok()) {
        std::cerr << stats.ToString() << "\n";
        return 1;
      }
      std::cout << json << "\n";
    }
    if (HasFlag(flags, "--shutdown")) {
      Status shutdown = client.Shutdown();
      if (!shutdown.ok()) {
        std::cerr << shutdown.ToString() << "\n";
        return 1;
      }
    }
  }
  return rc;
}

int CmdGrammar(const std::string& path) {
  Engine engine;
  Status loaded = engine.LoadFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }
  Result<Cfg> grammar = ChainProgramToGrammar(engine.program());
  if (!grammar.ok()) {
    std::cerr << grammar.status().ToString() << "\n";
    return 1;
  }
  std::cout << grammar->ToString();
  std::cout << "% self-embedding:   "
            << (IsSelfEmbedding(*grammar) ? "yes" : "no") << "\n";
  std::cout << "% strongly regular: "
            << (IsStronglyRegular(*grammar) ? "yes" : "no") << "\n";
  Result<Program> monadic = MonadicEquivalent(engine.program());
  if (monadic.ok()) {
    std::cout << "% Theorem 3.3 monadic program:\n" << ToString(*monadic);
  } else {
    std::cout << "% no monadic conversion: " << monadic.status().ToString()
              << "\n";
  }
  return 0;
}

int CmdCheck(const std::string& path1, const std::string& path2,
             const std::vector<std::string>& flags) {
  // The two programs must share one Context (ids stay comparable), so the
  // check keeps its own two-file parse instead of two Engine sessions.
  auto read = [](const std::string& path) -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  Result<std::string> s1 = read(path1);
  Result<std::string> s2 = read(path2);
  if (!s1.ok() || !s2.ok()) {
    std::cerr << "cannot read inputs\n";
    return 1;
  }
  ContextPtr ctx = std::make_shared<Context>();
  Result<ParsedUnit> p1 = ParseProgram(*s1, ctx);
  Result<ParsedUnit> p2 = ParseProgram(*s2, ctx);
  if (!p1.ok() || !p2.ok()) {
    std::cerr << (p1.ok() ? p2.status() : p1.status()).ToString() << "\n";
    return 1;
  }
  RandomCheckOptions options;
  options.trials = static_cast<int>(
      FlagValue(flags, "--trials", static_cast<uint32_t>(options.trials)));
  Result<RandomCheckReport> report =
      CheckQueryEquivalentOnEdb(p1->program, p2->program, options);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  if (report->equivalent) {
    std::cout << "no difference found in " << report->trials_run
              << " random trials\n";
    return 0;
  }
  std::cout << "NOT equivalent:\n" << report->counterexample << "\n";
  return 3;
}

int CmdPlan(const std::string& path) {
  Engine engine;
  Status loaded = engine.LoadFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }
  for (const Rule& rule : engine.program().rules()) {
    std::cout << ToString(*engine.ctx(), rule) << "\n";
    Result<RulePlan> plan = CompileRule(rule, PlanOptions());
    if (!plan.ok()) {
      std::cout << "  (uncompilable: " << plan.status().ToString() << ")\n";
      continue;
    }
    std::cout << PlanToString(*engine.ctx(), *plan);
  }
  return 0;
}

int CmdExplain(const std::string& path, const std::string& fact_text) {
  EngineOptions options;
  options.eval.record_provenance = true;
  Engine engine(std::move(options));
  Status loaded = engine.LoadFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }
  Result<Atom> fact = ParseAtom(fact_text, engine.ctx().get());
  if (!fact.ok() || !fact->IsGround()) {
    std::cerr << "explain needs a ground fact, e.g. \"tc(n0, n2)\"\n";
    return 1;
  }
  Result<EvalResult> result = engine.Run();
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::vector<Value> row;
  for (const Term& t : fact->args) row.push_back(t.id());
  Result<std::string> explained =
      ExplainFact(engine.program(), *result, fact->pred, row);
  if (!explained.ok()) {
    std::cerr << explained.status().ToString() << "\n";
    return 1;
  }
  std::cout << *explained;
  return 0;
}

int Main(int argc, char** argv) {
  Status fault = FaultPlan::Global().ArmFromEnv();
  if (!fault.ok()) {
    std::cerr << fault.ToString() << "\n";
    return 2;
  }
  if (argc >= 2 && std::strcmp(argv[1], "fault-sites") == 0) {
    for (std::string_view site : FaultPlan::Sites()) {
      std::cout << site << "\n";
    }
    return 0;
  }
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (command == "optimize") {
    ValidateFlags(rest, command, kCmdOptimize);
    return CmdOptimize(rest[0], rest);
  }
  if (command == "run") {
    ValidateFlags(rest, command, kCmdRun);
    // Positional arguments = input files (flag values already validated,
    // so skip the token after every value-taking flag).
    std::vector<std::string> files;
    for (size_t i = 0; i < rest.size(); ++i) {
      if (rest[i].rfind("--", 0) == 0) {
        const FlagSpec* spec = FindFlag(rest[i]);
        if (spec != nullptr && spec->takes_value) ++i;
        continue;
      }
      files.push_back(rest[i]);
    }
    if (files.empty()) return Usage();
    if (HasFlag(rest, "--jobs") || files.size() > 1) {
      return CmdRunService(files, rest);
    }
    return CmdRun(files[0], rest);
  }
  if (command == "connect") {
    ValidateFlags(rest, command, kCmdConnect);
    std::vector<std::string> files;
    for (size_t i = 0; i < rest.size(); ++i) {
      if (rest[i].rfind("--", 0) == 0) {
        const FlagSpec* spec = FindFlag(rest[i]);
        if (spec != nullptr && spec->takes_value) ++i;
        continue;
      }
      files.push_back(rest[i]);
    }
    return CmdConnect(files, rest);
  }
  if (command == "grammar") {
    ValidateFlags(rest, command, 0);
    return CmdGrammar(rest[0]);
  }
  if (command == "plan") {
    ValidateFlags(rest, command, 0);
    return CmdPlan(rest[0]);
  }
  if (command == "explain") {
    if (rest.size() < 2) return Usage();
    ValidateFlags(rest, command, 0);
    return CmdExplain(rest[0], rest[1]);
  }
  if (command == "check") {
    if (rest.size() < 2) return Usage();
    ValidateFlags(rest, command, kCmdCheck);
    return CmdCheck(rest[0], rest[1], rest);
  }
  return Usage();
}

}  // namespace
}  // namespace exdl

int main(int argc, char** argv) { return exdl::Main(argc, argv); }
