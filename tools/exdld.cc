// exdld — the ExDatalog query daemon (DESIGN.md §13).
//
//   exdld --socket PATH [--policy FILE] [--jobs N] [--threads N]
//         [--queue-depth N] [--drain-ms N] [--optimize]
//         [--data-dir DIR] [--compact-every N] [--max-facts-bytes N]
//         [--metrics-json FILE]
//   exdld --tcp HOST:PORT [same flags]
//
// One long-lived server wraps a QueryService behind the protocol of
// src/daemon/protocol.h on a unix-domain socket (or TCP with --tcp).
// Clients are `exdlc connect` invocations; see README "Running the
// daemon".
//
//   --socket PATH       unix-domain socket to listen on (default
//                       transport). A stale socket file left by a killed
//                       daemon is replaced; a live daemon on the path is
//                       an error.
//   --tcp HOST:PORT     listen on TCP instead (port 0 = ephemeral; the
//                       bound port is printed on startup)
//   --policy FILE       admission-control policy (tenant quotas; see
//                       src/daemon/admission.h for the format). Without
//                       it every tenant gets unlimited budgets.
//   --jobs N            query-service workers (parallel sessions)
//   --threads N         per-query evaluation threads
//   --queue-depth N     server-wide in-flight query bound; at the bound
//                       SUBMIT gets RETRY_LATER (default 64)
//   --drain-ms N        graceful-drain grace period (default 5000)
//   --optimize          run the optimizer pipeline on submitted queries
//   --data-dir DIR      durable EDB (DESIGN.md §15): every LOAD_FACTS is
//                       write-ahead logged to DIR/facts.log (fsync before
//                       the generation is acknowledged) and periodically
//                       compacted into DIR/edb.exdl; startup recovers the
//                       directory so loaded facts survive any crash
//   --compact-every N   fact loads between compactions (default 8;
//                       0 = never compact, the log only grows)
//   --max-facts-bytes N reject a LOAD_FACTS source larger than N bytes
//                       with a quota error (default: unlimited)
//   --metrics-json FILE write the telemetry document (with the "daemon"
//                       object): refreshed atomically (tmp + rename, so a
//                       crash never leaves a torn JSON file) every
//                       --metrics-interval-ms while serving, and finally
//                       on clean shutdown
//   --metrics-interval-ms N
//                       refresh period for --metrics-json (default 1000;
//                       lower = fresher dashboards, more write traffic)
//
// Lifecycle: SIGTERM and SIGINT initiate a graceful drain — stop
// accepting, finish or cancel in-flight work, then exit 0. A client
// SHUTDOWN message does the same. SIGKILL is recovered at next startup
// (stale socket replaced, --data-dir replayed) and by clients (batch
// retry reruns against the restarted daemon).
//
// Exit codes: 0 clean shutdown, 1 startup/runtime error, 2 usage.
//
// Fault injection: EXDL_FAULT_SPEC arms the daemon.* sites (see
// recovery/fault.h); tools/fault_sweep.sh drives them.

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "daemon/server.h"
#include "recovery/atomic_file.h"
#include "recovery/fault.h"

namespace exdl::daemon {
namespace {

/// Self-pipe written by the signal handler; the main loop polls it.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleTermSignal(int) {
  const char byte = 't';
  [[maybe_unused]] ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage() {
  std::cerr << "usage: exdld --socket PATH | --tcp HOST:PORT\n"
               "             [--policy FILE] [--jobs N] [--threads N]\n"
               "             [--queue-depth N] [--drain-ms N] [--optimize]\n"
               "             [--data-dir DIR] [--compact-every N]\n"
               "             [--max-facts-bytes N] [--metrics-json FILE]\n"
               "             [--metrics-interval-ms N]\n";
  return 2;
}

struct FlagSpec {
  const char* name;
  bool takes_value;
};

constexpr FlagSpec kFlagTable[] = {
    {"--socket", true},      {"--tcp", true},      {"--policy", true},
    {"--jobs", true},        {"--threads", true},  {"--queue-depth", true},
    {"--drain-ms", true},    {"--optimize", false},
    {"--data-dir", true},    {"--compact-every", true},
    {"--max-facts-bytes", true},
    {"--metrics-json", true},
    {"--metrics-interval-ms", true},
};

const FlagSpec* FindFlag(const std::string& arg) {
  for (const FlagSpec& spec : kFlagTable) {
    if (arg == spec.name) return &spec;
  }
  return nullptr;
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string FlagString(const std::vector<std::string>& args,
                       const std::string& flag, std::string fallback) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag && i + 1 < args.size()) return args[i + 1];
  }
  return fallback;
}

uint32_t FlagValue(const std::vector<std::string>& args,
                   const std::string& flag, uint32_t fallback,
                   uint32_t min_value = 1) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    try {
      unsigned long v = std::stoul(args[i + 1]);
      if (v < min_value || v > 1u << 20) throw std::out_of_range("range");
      return static_cast<uint32_t>(v);
    } catch (...) {
      std::cerr << flag << " requires a positive integer, got '"
                << args[i + 1] << "'\n";
      std::exit(2);
    }
  }
  return fallback;
}

int Main(int argc, char** argv) {
  Status fault = FaultPlan::Global().ArmFromEnv();
  if (!fault.ok()) {
    std::cerr << fault.ToString() << "\n";
    return 2;
  }
  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const FlagSpec* spec = FindFlag(args[i]);
    if (spec == nullptr) {
      std::cerr << "unknown flag: " << args[i] << "\n";
      return Usage();
    }
    if (spec->takes_value) {
      if (i + 1 >= args.size()) {
        std::cerr << args[i] << " requires a value\n";
        return 2;
      }
      ++i;
    }
  }

  DaemonOptions options;
  options.socket_path = FlagString(args, "--socket", std::string());
  const std::string tcp = FlagString(args, "--tcp", std::string());
  if (!tcp.empty()) {
    const size_t colon = tcp.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--tcp requires HOST:PORT\n";
      return 2;
    }
    options.use_tcp = true;
    options.tcp_host = tcp.substr(0, colon);
    try {
      options.tcp_port = static_cast<uint16_t>(std::stoul(tcp.substr(colon + 1)));
    } catch (...) {
      std::cerr << "--tcp requires HOST:PORT\n";
      return 2;
    }
  } else if (options.socket_path.empty()) {
    return Usage();
  }
  const std::string policy_path = FlagString(args, "--policy", std::string());
  if (!policy_path.empty()) {
    Result<AdmissionPolicy> policy = AdmissionPolicy::Load(policy_path);
    if (!policy.ok()) {
      std::cerr << policy.status().ToString() << "\n";
      return 1;
    }
    options.policy = std::move(*policy);
  }
  options.service.num_workers = FlagValue(args, "--jobs", 1);
  options.service.eval.num_threads = FlagValue(args, "--threads", 1);
  options.service.compile.optimize = HasFlag(args, "--optimize");
  options.max_pending = FlagValue(args, "--queue-depth", 64);
  options.drain_timeout_ms = FlagValue(args, "--drain-ms", 5000, 0);
  options.durability.data_dir = FlagString(args, "--data-dir", std::string());
  options.durability.compact_every = FlagValue(args, "--compact-every", 8, 0);
  options.max_facts_bytes = FlagValue(args, "--max-facts-bytes", 0, 0);

  // SIGTERM / SIGINT drain through the self-pipe; SIGPIPE would otherwise
  // kill the daemon whenever a client disappears mid-write.
  if (::pipe(g_signal_pipe) < 0) {
    std::cerr << "pipe(): " << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, HandleTermSignal);
  std::signal(SIGINT, HandleTermSignal);
  options.shutdown_notify_fd = g_signal_pipe[1];

  DaemonServer server(std::move(options));
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  if (server.durable() != nullptr) {
    const durability::DurabilityCounters recovered =
        server.durable()->counters();
    std::cout << "exdld: recovered " << server.options().durability.data_dir
              << " (generation " << recovered.snapshot_generation
              << " snapshot + " << recovered.records_replayed
              << " replayed record(s)";
    if (recovered.truncated_tail_bytes > 0) {
      std::cout << ", " << recovered.truncated_tail_bytes
                << " torn tail byte(s) truncated";
    }
    std::cout << ")" << std::endl;
  }
  if (server.options().use_tcp) {
    std::cout << "exdld: listening on " << server.options().tcp_host << ":"
              << server.bound_tcp_port() << std::endl;
  } else {
    std::cout << "exdld: listening on " << server.options().socket_path
              << std::endl;
  }

  const std::string metrics_path =
      FlagString(args, "--metrics-json", std::string());

  // Block until a termination signal or a client SHUTDOWN. With
  // --metrics-json, wake every --metrics-interval-ms (default 1000) to
  // refresh the telemetry document atomically — a SIGKILL then leaves a
  // recent, never-torn file.
  const int poll_timeout_ms =
      metrics_path.empty()
          ? -1
          : static_cast<int>(FlagValue(args, "--metrics-interval-ms", 1000));
  while (true) {
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc == 0) {
      Status refreshed =
          recovery::AtomicWriteFile(metrics_path, server.MetricsJson());
      if (!refreshed.ok()) {
        std::cerr << "cannot write " << metrics_path << ": "
                  << refreshed.ToString() << "\n";
      }
      continue;
    }
    break;
  }
  std::cerr << "exdld: draining\n";
  server.Stop();

  if (!metrics_path.empty()) {
    Status written =
        recovery::AtomicWriteFile(metrics_path, server.MetricsJson());
    if (!written.ok()) {
      std::cerr << "cannot write " << metrics_path << ": "
                << written.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace exdl::daemon

int main(int argc, char** argv) {
  return exdl::daemon::Main(argc, argv);
}
