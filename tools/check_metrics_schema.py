#!/usr/bin/env python3
"""Validate an `exdlc --metrics-json` document against the checked-in schema.

Usage: check_metrics_schema.py [--schema tools/metrics_schema.json]
                               [--require-rules] [--require-phases]
                               FILE [FILE ...]

Implements the small JSON Schema subset the schema file uses (type,
required, properties, items, enum) with no third-party dependencies, so CI
can run it on a stock Python 3. Unknown keys in documents are allowed —
the schema pins what producers promise, not everything they may add.

--require-rules / --require-phases additionally assert the per-rule and
per-phase arrays are non-empty (the E1 acceptance check: a run over a
program with rules must attribute work to them).
"""

import argparse
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    # bool is an int in Python; excluded explicitly below.
    "number": (int, float),
}


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        py_type = TYPES[expected]
        ok = isinstance(value, py_type) and not (
            expected in ("integer", "number") and isinstance(value, bool)
        )
        if not ok:
            errors.append(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_file(path, schema, require_rules, require_phases):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    validate(doc, schema, "$", errors)
    if require_rules and not doc.get("rules"):
        errors.append("$.rules: empty (expected per-rule rows)")
    if require_phases and not doc.get("phases"):
        errors.append("$.phases: empty (expected per-phase rows)")
    # Cross-field consistency the type system can't express.
    if not errors:
        for i, metric in enumerate(doc["metrics"]):
            if metric["kind"] == "histogram":
                bounds = metric.get("bounds", [])
                counts = metric.get("counts", [])
                if len(counts) != len(bounds) + 1:
                    errors.append(
                        f"$.metrics[{i}]: histogram has {len(counts)} counts "
                        f"for {len(bounds)} bounds (want bounds+1)"
                    )
        span_ids = {span["id"] for span in doc["spans"]}
        for i, span in enumerate(doc["spans"]):
            if span["parent"] != -1 and span["parent"] not in span_ids:
                errors.append(f"$.spans[{i}]: dangling parent {span['parent']}")
    return [f"{path}: {e}" if not e.startswith(path) else e for e in errors]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", default="tools/metrics_schema.json")
    parser.add_argument("--require-rules", action="store_true")
    parser.add_argument("--require-phases", action="store_true")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()
    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)
    failed = False
    for path in args.files:
        errors = check_file(
            path, schema, args.require_rules, args.require_phases
        )
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {error}", file=sys.stderr)
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
