#!/usr/bin/env bash
# End-to-end smoke of the exdld daemon lifecycle (DESIGN.md section 13),
# run by the CI daemon-smoke job:
#
#   1. a batch over the unix socket prints answers byte-identical to an
#      in-process `exdlc run <files...> --jobs 1` of the same files;
#   2. the STATS document (exdlc connect --stats) satisfies
#      tools/metrics_schema.json, daemon object included;
#   3. kill -9 mid-query: the client sees a torn connection; a restarted
#      daemon recovers the stale socket file, and the batch — whether the
#      client's in-run retry ladder caught the restart or a fresh run was
#      needed — ends byte-identical to the reference;
#   4. SIGTERM: graceful drain, exit 0, and the --metrics-json document
#      written on the way out validates against the schema;
#   5. durability (DESIGN.md section 15): a --data-dir daemon is SIGKILLed
#      in the middle of a stream of LOAD_FACTS calls. The restart must
#      succeed, recover every acknowledged load (at most the un-fsync'd
#      in-flight record may be missing — never an acknowledged one), and
#      serve answers byte-identical to a fresh daemon loaded with exactly
#      the recovered prefix;
#   6. standing queries (DESIGN.md section 16, protocol v2): REGISTER a
#      view, LOAD_FACTS a delta, and POLL_RESULT — the polled answers
#      must be byte-identical to a one-shot submission of the same source
#      at the same generation, the maintenance must report incremental
#      (full_recomputes=0), and the view survives across connections
#      until UNREGISTER drops it.
#
# Any divergent output, unexpected exit code, or invalid document fails
# the smoke. Runs are bounded by `timeout` so a hang cannot stall CI.
#
# usage: tools/daemon_smoke.sh <exdlc-binary> <exdld-binary>

set -u

EXDLC=${1:?usage: daemon_smoke.sh <exdlc-binary> <exdld-binary>}
EXDLD=${2:?usage: daemon_smoke.sh <exdlc-binary> <exdld-binary>}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

RUN="timeout 120"
SOCK="$WORK/smoke.sock"
METRICS="$WORK/exdld_metrics.json"
DPID=""
fail=0

say() { printf 'daemon-smoke: %s\n' "$*"; }
flunk() {
  printf 'FAIL: %s\n' "$*"
  fail=1
}

start_daemon() {  # $1 = extra args (may be empty)
  # shellcheck disable=SC2086  # $1 is intentionally split
  "$EXDLD" --socket "$SOCK" --jobs 2 --metrics-json "$METRICS" $1 \
    >"$WORK/exdld.log" 2>&1 &
  DPID=$!
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
    kill -0 "$DPID" 2>/dev/null || return 1
    sleep 0.05
    i=$((i + 1))
  done
  [ -S "$SOCK" ]
}

# The batch: one real workload plus a trivial one, so the byte-identity
# check covers both multi-round evaluation and the batch framing itself.
F1="$WORK/smoke_a.dl"
F2="$WORK/smoke_b.dl"
{
  echo "tc(X, Y) :- e(X, Y)."
  echo "tc(X, Z) :- e(X, Y), tc(Y, Z)."
  echo "?- tc(s0, X)."
  i=0
  while [ "$i" -lt 1200 ]; do
    echo "e(s$i, s$((i + 1)))."
    i=$((i + 1))
  done
} >"$F1"
cp "$REPO_ROOT/examples/tc_chain.dl" "$F2"

REF="$WORK/ref.out"
$RUN "$EXDLC" run "$F1" "$F2" --jobs 1 >"$REF" 2>/dev/null \
  || { flunk "in-process reference run did not complete"; exit 1; }

# --- 1. plain batch over the socket ----------------------------------------
start_daemon "" || { flunk "exdld did not start"; exit 1; }
$RUN "$EXDLC" connect "$F1" "$F2" --socket "$SOCK" \
  >"$WORK/batch.out" 2>"$WORK/batch.err"
rc=$?
[ "$rc" -eq 0 ] || flunk "batch client exited $rc"
cmp -s "$REF" "$WORK/batch.out" \
  || { flunk "socket answers differ from exdlc run --jobs 1"; diff "$REF" "$WORK/batch.out" | head; }
say "batch over the socket is byte-identical to --jobs 1"

# --- 2. STATS document validates -------------------------------------------
$RUN "$EXDLC" connect --socket "$SOCK" --stats >"$WORK/stats.json" 2>&1 \
  || flunk "exdlc connect --stats failed"
python3 "$REPO_ROOT/tools/check_metrics_schema.py" \
  --schema "$REPO_ROOT/tools/metrics_schema.json" "$WORK/stats.json" \
  || flunk "STATS document does not satisfy the schema"
python3 - "$WORK/stats.json" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
daemon = doc.get("daemon")
assert daemon, "STATS document is missing the daemon object"
assert daemon["connections"]["accepted"] >= 2, daemon
assert daemon["submits_admitted"] >= 2, daemon
EOF
say "STATS document satisfies tools/metrics_schema.json"

# --- 3. kill -9 mid-query, restart, byte-identical recovery ----------------
$RUN "$EXDLC" connect "$F1" "$F2" --socket "$SOCK" \
  --retries 8 --retry-base-ms 100 >"$WORK/torn.out" 2>"$WORK/torn.err" &
CPID=$!
sleep 0.15   # let the first (long) query get in flight
kill -9 "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
# Immediate restart: the stale socket file from the SIGKILLed daemon must
# be detected as dead and rebound, not mistaken for a live server.
start_daemon "" || { flunk "exdld did not restart over the stale socket"; exit 1; }
wait "$CPID"
crc=$?
if [ "$crc" -eq 0 ]; then
  # The client's retry ladder caught the restart: in-run recovery.
  cmp -s "$REF" "$WORK/torn.out" \
    || flunk "in-run recovery output differs from reference"
  say "client recovered in-run across the kill -9 (rc 0, byte-identical)"
else
  # The ladder ran out first; a fresh run against the restarted daemon
  # must still be byte-identical — the torn batch leaves no trace.
  $RUN "$EXDLC" connect "$F1" "$F2" --socket "$SOCK" \
    >"$WORK/rerun.out" 2>"$WORK/rerun.err" \
    || flunk "re-run after restart failed"
  cmp -s "$REF" "$WORK/rerun.out" \
    || flunk "post-restart output differs from reference"
  say "client re-run after kill -9 restart is byte-identical (torn rc $crc)"
fi

# --- 4. graceful SIGTERM drain + metrics document --------------------------
kill -TERM "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
drc=$?
[ "$drc" -eq 0 ] || flunk "SIGTERM drain exited $drc (want 0)"
[ -f "$METRICS" ] || flunk "exdld wrote no --metrics-json document"
if [ -f "$METRICS" ]; then
  python3 "$REPO_ROOT/tools/check_metrics_schema.py" \
    --schema "$REPO_ROOT/tools/metrics_schema.json" "$METRICS" \
    || flunk "--metrics-json document does not satisfy the schema"
fi
say "SIGTERM drained cleanly and the exit metrics document validates"

# --- 5. durability: kill -9 mid-LOAD_FACTS stream, restart --data-dir ------
DATA="$WORK/smoke_data"
rm -rf "$DATA"
for i in $(seq 1 12); do
  echo "d(k$i)." >"$WORK/fact_$i.facts"
done
{
  echo "m(X) :- d(X)."
  echo "?- m(X)."
} >"$WORK/durq.dl"
start_daemon "--data-dir $DATA --compact-every 3" \
  || { flunk "exdld did not start with --data-dir"; exit 1; }
# Kill the daemon mid-stream; whichever load is in flight right then may
# be lost, every load acknowledged before it must not be.
(sleep 0.35; kill -9 "$DPID" 2>/dev/null) &
KPID=$!
acked=0
for i in $(seq 1 12); do
  if $RUN "$EXDLC" connect --load-facts "$WORK/fact_$i.facts" \
      --socket "$SOCK" --retries 1 --retry-base-ms 1 >/dev/null 2>&1; then
    acked=$((acked + 1))
  else
    break
  fi
done
wait "$KPID" 2>/dev/null
wait "$DPID" 2>/dev/null
say "SIGKILLed the durable daemon after $acked acknowledged load(s)"
# The SIGKILLed daemon leaves its socket file behind; remove it so
# start_daemon's socket-exists wait really waits for the restarted daemon
# to finish recovery and bind (phase 3 instead relies on client retries).
rm -f "$SOCK"
# The restart must never fail: a torn log tail is truncated, never fatal.
start_daemon "--data-dir $DATA --compact-every 3" \
  || { flunk "exdld did not restart over the crashed data dir"; exit 1; }
$RUN "$EXDLC" connect "$WORK/durq.dl" --socket "$SOCK" \
  >"$WORK/dur.out" 2>"$WORK/dur.err" \
  || flunk "post-restart durability query failed"
recovered=$(grep -c '^k' "$WORK/dur.out")
if [ "$recovered" -lt "$acked" ] || [ "$recovered" -gt 12 ]; then
  flunk "recovered $recovered load(s), want between acked=$acked and 12"
fi
$RUN "$EXDLC" connect --socket "$SOCK" --stats >"$WORK/dur_stats.json" 2>&1 \
  || flunk "exdlc connect --stats failed on the durable daemon"
python3 - "$WORK/dur_stats.json" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
dur = doc.get("daemon", {}).get("durability")
assert dur, "durable daemon STATS is missing daemon.durability"
assert dur["records_replayed"] >= 0, dur
assert dur["snapshot_generation"] >= 0, dur
EOF
kill -TERM "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
# Byte-identity: a fresh daemon loaded with exactly the recovered prefix
# must serve the same answers — recovery replays through the same
# interning path, so even intern order matches.
FRESH="$WORK/smoke_fresh"
rm -rf "$FRESH"
start_daemon "--data-dir $FRESH --compact-every 3" \
  || { flunk "fresh comparison daemon did not start"; exit 1; }
i=1
while [ "$i" -le "$recovered" ]; do
  $RUN "$EXDLC" connect --load-facts "$WORK/fact_$i.facts" --socket "$SOCK" \
    >/dev/null 2>&1 || flunk "fresh daemon load $i failed"
  i=$((i + 1))
done
$RUN "$EXDLC" connect "$WORK/durq.dl" --socket "$SOCK" \
  >"$WORK/fresh.out" 2>"$WORK/fresh.err" \
  || flunk "fresh daemon comparison query failed"
cmp -s "$WORK/dur.out" "$WORK/fresh.out" \
  || { flunk "recovered answers differ from a fresh daemon's"; \
       diff "$WORK/dur.out" "$WORK/fresh.out" | head; }
kill -TERM "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
drc=$?
[ "$drc" -eq 0 ] || flunk "durable daemon SIGTERM drain exited $drc (want 0)"
say "kill -9 mid-LOAD_FACTS recovered $recovered/12 loads, byte-identical"

# --- 6. standing queries: register, load, poll, byte-identity --------------
{
  echo "stc(X, Y) :- se(X, Y)."
  echo "stc(X, Z) :- se(X, Y), stc(Y, Z)."
  echo "?- stc(a, X)."
} >"$WORK/standq.dl"
echo "se(a, b). se(b, c)." >"$WORK/stand_base.facts"
echo "se(c, d). se(d, e2)." >"$WORK/stand_delta.facts"
start_daemon "" || { flunk "exdld did not start for the standing phase"; exit 1; }
$RUN "$EXDLC" connect --load-facts "$WORK/stand_base.facts" --socket "$SOCK" \
  >/dev/null 2>&1 || flunk "standing base fact load failed"
$RUN "$EXDLC" connect "$WORK/standq.dl" --socket "$SOCK" --register \
  >"$WORK/reg.out" 2>"$WORK/reg.err" || flunk "standing REGISTER failed"
SID=$(sed -n 's/.*registered standing query \([0-9][0-9]*\) .*/\1/p' "$WORK/reg.err")
[ -n "$SID" ] || { flunk "could not parse the standing id from: $(cat "$WORK/reg.err")"; SID=1; }
$RUN "$EXDLC" connect --load-facts "$WORK/stand_delta.facts" --socket "$SOCK" \
  >/dev/null 2>&1 || flunk "standing delta fact load failed"
# Poll on a NEW connection (views are daemon-scoped, not connection-scoped).
$RUN "$EXDLC" connect --socket "$SOCK" --poll "$SID" \
  >"$WORK/poll.out" 2>"$WORK/poll.err" || flunk "standing POLL_RESULT failed"
grep -q 'incremental' "$WORK/poll.err" \
  || flunk "poll did not report incremental maintenance: $(cat "$WORK/poll.err")"
grep -q 'full_recomputes=0' "$WORK/poll.err" \
  || flunk "poll reported a full recompute: $(cat "$WORK/poll.err")"
# Byte-identity: a one-shot submission of the same source at the same
# generation, minus the batch's "== name ==" header line.
$RUN "$EXDLC" connect "$WORK/standq.dl" --socket "$SOCK" \
  >"$WORK/standcold.out" 2>/dev/null || flunk "standing cold comparison run failed"
tail -n +2 "$WORK/standcold.out" >"$WORK/standcold.body"
cmp -s "$WORK/poll.out" "$WORK/standcold.body" \
  || { flunk "polled standing answers differ from a one-shot submission"; \
       diff "$WORK/poll.out" "$WORK/standcold.body" | head; }
$RUN "$EXDLC" connect --socket "$SOCK" --unregister "$SID" \
  >/dev/null 2>&1 || flunk "standing UNREGISTER failed"
if $RUN "$EXDLC" connect --socket "$SOCK" --poll "$SID" >/dev/null 2>&1; then
  flunk "poll of an unregistered standing id unexpectedly succeeded"
fi
kill -TERM "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
src=$?
[ "$src" -eq 0 ] || flunk "standing-phase SIGTERM drain exited $src (want 0)"
say "standing query registered, maintained, polled byte-identical, dropped"

if [ "$fail" -ne 0 ]; then
  echo "daemon smoke: FAILED"
  exit 1
fi
echo "daemon smoke: all checks passed"
