#!/usr/bin/env python3
"""Assert the monadic bench ran kernel-only on the bitset path.

Usage: check_bench_fallback.py [BENCH_bench_e9_monadic.json]

Reads the JSON rows written by bench_e9_monadic (run with
EXDL_BENCH_METRICS=1 so every row carries its telemetry document) and
fails if any case whose name requests the bitset/auto representation
reports storage.representation.fallbacks != 0 — i.e. a rule the monadic
synthesis produced was not bitset-eligible and silently fell back to the
generic descent. The monadic programs of Theorem 3.3 are exactly the
shape DESIGN.md §14 promises to run as kernels, so a nonzero fallback
count here is a planner regression, not a data effect.

Exit codes: 0 all bitset/auto monadic cases ran kernel-only; 1 a case
fell back (or carried no telemetry); 2 usage / unreadable input.
"""

import json
import sys


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_bench_e9_monadic.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for row in doc.get("results", []):
        name = row.get("name", "")
        # Monadic_auto/N and Monadic_bitset/N request the kernel path;
        # Monadic_tuple/N and BinaryChain/N legitimately report zero.
        if not (name.startswith("Monadic_auto/") or
                name.startswith("Monadic_bitset/")):
            continue
        checked += 1
        telemetry = row.get("telemetry")
        if telemetry is None:
            print(f"FAIL {name}: no telemetry in row "
                  "(run the bench with EXDL_BENCH_METRICS=1)")
            failures += 1
            continue
        rep = telemetry.get("storage", {}).get("representation", {})
        fallbacks = rep.get("fallbacks")
        if fallbacks != 0:
            print(f"FAIL {name}: storage.representation.fallbacks = "
                  f"{fallbacks!r} (want 0)")
            failures += 1
        else:
            print(f"ok   {name}: fallbacks=0 "
                  f"(words_scanned={rep.get('words_scanned')}, "
                  f"bitset_relations={rep.get('bitset_relations')})")
    if checked == 0:
        print(f"error: {path} has no Monadic_auto/Monadic_bitset rows",
              file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
