#!/usr/bin/env python3
"""Assert the standing-query bench maintained its views incrementally.

Usage: check_bench_ivm.py [BENCH_bench_a3_standing_queries.json]

Reads the JSON rows written by bench_a3_standing_queries (run with
EXDL_BENCH_METRICS=1 so every row carries the service's metrics document)
and fails if any standing/incremental case reports ivm.full_recomputes
!= 0 — i.e. a view that DESIGN.md §16 promises stays on the delta-driven
path fell back to recomputing its fixpoint from scratch. The bench binary
already aborts when the polled answers diverge from a cold re-evaluation,
so by the time this checker runs, byte-identity has been enforced; this
guards the *mechanism*, not the answers.

The incremental-vs-recompute speedup is printed per worker count but is
informational only (CI machines are too noisy to gate on a ratio).

Exit codes: 0 every incremental case stayed incremental; 1 a full
recompute happened (or telemetry was missing); 2 usage/unreadable input.
"""

import json
import sys


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_bench_a3_standing_queries.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    qps = {}  # (case, workers) -> qps
    for row in doc.get("results", []):
        name = row.get("name", "")
        if not name.startswith("standing/"):
            continue
        _, case, workers = name.split("/", 2)
        if "queries_per_sec" in row:
            qps[(case, workers)] = row["queries_per_sec"]
        if case != "incremental":
            continue
        checked += 1
        telemetry = row.get("telemetry")
        if telemetry is None:
            print(f"FAIL {name}: no telemetry in row "
                  "(run the bench with EXDL_BENCH_METRICS=1)")
            failures += 1
            continue
        ivm = telemetry.get("ivm", {})
        recomputes = ivm.get("full_recomputes")
        if recomputes != 0:
            print(f"FAIL {name}: ivm.full_recomputes = {recomputes!r} "
                  "(want 0: the incremental path must never reseed here)")
            failures += 1
        else:
            print(f"ok   {name}: full_recomputes=0 "
                  f"(generations={ivm.get('generations_applied')}, "
                  f"delta_rounds={ivm.get('delta_rounds')}, "
                  f"tuples_rederived={ivm.get('tuples_rederived')})")
    for (case, workers), value in sorted(qps.items()):
        if case != "incremental":
            continue
        base = qps.get(("recompute", workers))
        if base:
            print(f"info {workers}: incremental {value:.0f} qps vs "
                  f"recompute {base:.0f} qps ({value / base:.1f}x)")
    if checked == 0:
        print(f"error: {path} has no standing/incremental rows",
              file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
