#!/usr/bin/env bash
# Deterministic fault sweep over the checkpoint/restore path.
#
# For every registered fault site and every trigger depth 1..MAX_HITS, run
# exdlc with an injected crash (EXDL_FAULT_SPEC="<site>:<n>:abort") and
# round-boundary checkpointing, then prove one of:
#
#   * the run completed (the site was never reached at that depth) and its
#     output is byte-identical to the uninterrupted reference, or
#   * the run died with the injected-crash exit code (86), and resuming
#     from the surviving checkpoint — or restarting from scratch when the
#     crash landed before the first checkpoint was cut — reproduces the
#     reference output byte for byte.
#
# Any other exit code (a real crash, a sanitizer report), any divergent
# output, or any checkpoint that fails to load is a sweep failure.
#
# usage: tools/fault_sweep.sh <exdlc-binary> [max-hits]

set -u

EXDLC=${1:?usage: fault_sweep.sh <exdlc-binary> [max-hits]}
MAX_HITS=${2:-5}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SITES="storage.arena_grow eval.pool_dispatch snapshot.open snapshot.write snapshot.fsync snapshot.rename"
fail=0
cases=0

# $1 = program file, $2 = thread count, $3 = label for messages
run_sweep() {
  prog=$1
  threads=$2
  label=$3
  ref="$WORK/ref_$label.out"
  if ! "$EXDLC" run "$prog" --threads "$threads" >"$ref" 2>/dev/null; then
    echo "FAIL: $label reference run did not complete"
    fail=1
    return
  fi
  for site in $SITES; do
    for n in $(seq 1 "$MAX_HITS"); do
      cases=$((cases + 1))
      dir="$WORK/ckpt_${label}_${site}_${n}"
      mkdir -p "$dir"
      out="$WORK/out.txt"
      EXDL_FAULT_SPEC="$site:$n:abort" "$EXDLC" run "$prog" \
        --threads "$threads" --checkpoint-dir "$dir" \
        --checkpoint-every-rounds 1 >"$out" 2>"$WORK/err.txt"
      rc=$?
      if [ "$rc" -eq 0 ]; then
        # Site not reached at this depth: the run must be untouched.
        if ! cmp -s "$ref" "$out"; then
          echo "FAIL: $label $site:$n completed but output differs"
          fail=1
        fi
        continue
      fi
      if [ "$rc" -ne 86 ]; then
        echo "FAIL: $label $site:$n exited $rc (want 0 or 86)"
        sed 's/^/    /' "$WORK/err.txt" | head -5
        fail=1
        continue
      fi
      resume_args=""
      if [ -f "$dir/checkpoint.exdl" ]; then
        resume_args="--resume $dir/checkpoint.exdl"
      fi
      # shellcheck disable=SC2086  # resume_args is intentionally split
      if ! "$EXDLC" run "$prog" --threads "$threads" $resume_args \
          >"$out" 2>"$WORK/err.txt"; then
        echo "FAIL: $label $site:$n recovery run failed"
        sed 's/^/    /' "$WORK/err.txt" | head -5
        fail=1
        continue
      fi
      if ! cmp -s "$ref" "$out"; then
        echo "FAIL: $label $site:$n recovered output differs from reference"
        fail=1
      fi
    done
  done
}

# Sweep 1: the stock example, serial. Exercises arena growth and every
# snapshot I/O site; eval.pool_dispatch is unreachable serially (counts as
# "completed identical" at every depth, which the sweep verifies too).
run_sweep "$REPO_ROOT/examples/tc_chain.dl" 1 serial

# Sweep 2: a chain long enough for the worker pool to engage (the pool
# partitions scans of >= 128 rows), 4 threads. Reaches eval.pool_dispatch
# and re-proves the snapshot sites under parallel evaluation.
BIG="$WORK/big_chain.dl"
{
  echo "tc(X, Y) :- e(X, Y)."
  echo "tc(X, Z) :- e(X, Y), tc(Y, Z)."
  echo "?- tc(n0, X)."
  i=0
  while [ "$i" -lt 300 ]; do
    echo "e(n$i, n$((i + 1)))."
    i=$((i + 1))
  done
} >"$BIG"
run_sweep "$BIG" 4 parallel

if [ "$fail" -ne 0 ]; then
  echo "fault sweep: FAILED ($cases cases)"
  exit 1
fi
echo "fault sweep: all $cases cases recovered to byte-identical output"
