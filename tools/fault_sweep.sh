#!/usr/bin/env bash
# Deterministic fault sweep over the recovery paths.
#
# The site list is NOT hard-coded here: it comes from `exdlc fault-sites`,
# the single source of truth (src/recovery/fault.cc). Sites are partitioned
# by prefix:
#
#   engine sites (storage.*, eval.*, snapshot.*)
#     For every trigger depth 1..MAX_HITS, run exdlc with an injected crash
#     (EXDL_FAULT_SPEC="<site>:<n>:abort") and round-boundary
#     checkpointing, then prove the run either completed untouched (site
#     not reached at that depth) or died with exit 86 and recovered — via
#     the surviving checkpoint or a restart — to byte-identical output.
#
#   daemon sites (daemon.*, except daemon.recover_replay) — requires the
#   exdld binary argument
#     For every depth, twice per depth:
#       fail mode  the daemon injects the failure (torn connection,
#                  dropped accept, failed dispatch) but keeps running; the
#                  exdlc connect batch client must recover in-run through
#                  its retry ladder and produce output byte-identical to an
#                  in-process `exdlc run --jobs 1` of the same files.
#       abort mode the daemon hard-crashes (exit 86) at the site; the
#                  sweep restarts it and re-runs the client, which must
#                  recover to byte-identical output. The 86 exit is also
#                  the proof the site was reached.
#     Both a serial (--jobs 1) and a 4-worker daemon are swept.
#
#   durability sites (factlog.*, daemon.recover_replay) — requires exdld
#     The durable-EDB paths (DESIGN.md §15): a daemon with --data-dir takes
#     five fact loads with a fault armed at the site, in fail and abort
#     mode, serial and 4-worker. Fail-mode failures must be recoverable by
#     re-issuing the load against the live daemon; an abort (exit 86, torn
#     log tail and all) must recover on restart. daemon.recover_replay is
#     seeded first (load five facts, SIGKILL) and armed on the *restart*:
#     recovery must fail closed (never serve a partial EDB), and a clean
#     restart must then succeed. Every case ends by diffing the recovered
#     daemon's answers against an uninterrupted reference — byte-identical.
#
# At the end the sweep fails loudly if any site in the registry was never
# reached (never produced an 86 exit at any depth) — a renamed or
# disconnected site cannot silently drop out of coverage.
#
# Any other exit code (a real crash, a sanitizer report), any divergent
# output, any hang (runs are bounded by `timeout`), or any checkpoint that
# fails to load is a sweep failure.
#
# usage: tools/fault_sweep.sh <exdlc-binary> [exdld-binary] [max-hits]
#   Without <exdld-binary> the daemon.* and durability sites are skipped
#   (and exempted from the must-reach check) — CI always passes it.

set -u

EXDLC=${1:?usage: fault_sweep.sh <exdlc-binary> [exdld-binary] [max-hits]}
EXDLD=${2:-}
MAX_HITS=${3:-5}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# The shared site table (recovery/fault.cc), split by subsystem.
ALL_SITES=$("$EXDLC" fault-sites) || {
  echo "FAIL: cannot read the site list from exdlc fault-sites"
  exit 1
}
ENGINE_SITES=$(printf '%s\n' "$ALL_SITES" | grep -v -e '^daemon\.' -e '^factlog\.')
DAEMON_SITES=$(printf '%s\n' "$ALL_SITES" | grep '^daemon\.' \
  | grep -v '^daemon\.recover_replay$')
DUR_SITES=$(printf '%s\n' "$ALL_SITES" \
  | grep -e '^factlog\.' -e '^daemon\.recover_replay$')

fail=0
cases=0

mark_reached() { touch "$WORK/reached_$1"; }

# Bound every child run so an injected fault can never hang the sweep.
RUN="timeout 120"

# ---------------------------------------------------------------------------
# Engine sweep: crash + checkpoint/resume recovery.

# $1 = program file, $2 = thread count, $3 = label for messages
run_engine_sweep() {
  prog=$1
  threads=$2
  label=$3
  ref="$WORK/ref_$label.out"
  if ! $RUN "$EXDLC" run "$prog" --threads "$threads" >"$ref" 2>/dev/null; then
    echo "FAIL: $label reference run did not complete"
    fail=1
    return
  fi
  for site in $ENGINE_SITES; do
    for n in $(seq 1 "$MAX_HITS"); do
      cases=$((cases + 1))
      dir="$WORK/ckpt_${label}_${site}_${n}"
      mkdir -p "$dir"
      out="$WORK/out.txt"
      EXDL_FAULT_SPEC="$site:$n:abort" $RUN "$EXDLC" run "$prog" \
        --threads "$threads" --checkpoint-dir "$dir" \
        --checkpoint-every-rounds 1 >"$out" 2>"$WORK/err.txt"
      rc=$?
      if [ "$rc" -eq 0 ]; then
        # Site not reached at this depth: the run must be untouched.
        if ! cmp -s "$ref" "$out"; then
          echo "FAIL: $label $site:$n completed but output differs"
          fail=1
        fi
        continue
      fi
      if [ "$rc" -ne 86 ]; then
        echo "FAIL: $label $site:$n exited $rc (want 0 or 86)"
        sed 's/^/    /' "$WORK/err.txt" | head -5
        fail=1
        continue
      fi
      mark_reached "$site"
      resume_args=""
      if [ -f "$dir/checkpoint.exdl" ]; then
        resume_args="--resume $dir/checkpoint.exdl"
      fi
      # shellcheck disable=SC2086  # resume_args is intentionally split
      if ! $RUN "$EXDLC" run "$prog" --threads "$threads" $resume_args \
          >"$out" 2>"$WORK/err.txt"; then
        echo "FAIL: $label $site:$n recovery run failed"
        sed 's/^/    /' "$WORK/err.txt" | head -5
        fail=1
        continue
      fi
      if ! cmp -s "$ref" "$out"; then
        echo "FAIL: $label $site:$n recovered output differs from reference"
        fail=1
      fi
    done
  done
}

# ---------------------------------------------------------------------------
# Daemon sweep: torn connections, dropped accepts, failed dispatches, and
# hard crashes of exdld, all recovered by the exdlc connect retry client.

SOCK="$WORK/sweep.sock"
DPID=""

start_daemon() {  # $1 = jobs, $2 = fault spec ("" for none)
  rm -f "$SOCK"
  if [ -n "$2" ]; then
    EXDL_FAULT_SPEC="$2" "$EXDLD" --socket "$SOCK" --jobs "$1" \
      >/dev/null 2>&1 &
  else
    "$EXDLD" --socket "$SOCK" --jobs "$1" >/dev/null 2>&1 &
  fi
  DPID=$!
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
    kill -0 "$DPID" 2>/dev/null || return 1
    sleep 0.05
    i=$((i + 1))
  done
  [ -S "$SOCK" ]
}

# Stops the daemon if alive; leaves its exit code in $DRC. (Not a command
# substitution: `wait` only works on children of this shell, not a subshell.)
stop_daemon() {
  if kill -0 "$DPID" 2>/dev/null; then
    kill -TERM "$DPID" 2>/dev/null
  fi
  wait "$DPID" 2>/dev/null
  DRC=$?
}

run_daemon_sweep() {  # $1 = jobs, $2 = label
  jobs=$1
  label=$2
  f1="$WORK/sweep_a.dl"
  f2="$WORK/sweep_b.dl"
  ref="$WORK/ref_daemon.out"
  if ! $RUN "$EXDLC" run "$f1" "$f2" --jobs 1 >"$ref" 2>/dev/null; then
    echo "FAIL: daemon-sweep in-process reference run did not complete"
    fail=1
    return
  fi
  for site in $DAEMON_SITES; do
    for n in $(seq 1 "$MAX_HITS"); do
      for mode in fail abort; do
        cases=$((cases + 1))
        spec="$site:$n"
        [ "$mode" = abort ] && spec="$spec:abort"
        if ! start_daemon "$jobs" "$spec"; then
          echo "FAIL: $label $spec daemon did not start"
          fail=1
          continue
        fi
        out="$WORK/daemon_out.txt"
        $RUN "$EXDLC" connect "$f1" "$f2" --socket "$SOCK" \
          --retries 6 --retry-base-ms 5 >"$out" 2>"$WORK/err.txt"
        crc=$?
        if kill -0 "$DPID" 2>/dev/null; then
          # Daemon survived: in fail mode the client must have recovered
          # in-run; in abort mode the site was not reached at this depth.
          if [ "$crc" -ne 0 ] || ! cmp -s "$ref" "$out"; then
            echo "FAIL: $label $spec client rc=$crc or output differs"
            sed 's/^/    /' "$WORK/err.txt" | head -5
            fail=1
          fi
          stop_daemon
          if [ "$DRC" -ne 0 ] && [ "$DRC" -ne 86 ]; then
            echo "FAIL: $label $spec daemon shutdown rc=$DRC (want 0 or 86)"
            fail=1
          fi
          [ "$DRC" -eq 86 ] && mark_reached "$site"
          continue
        fi
        # Daemon died mid-run: only the injected crash may kill it.
        stop_daemon
        if [ "$DRC" -ne 86 ]; then
          echo "FAIL: $label $spec daemon died rc=$DRC (want 86)"
          fail=1
          continue
        fi
        mark_reached "$site"
        if [ "$mode" = fail ]; then
          echo "FAIL: $label $spec fail-mode daemon must not crash"
          fail=1
          continue
        fi
        # The client saw a torn connection (rc 8 once its retries ran out
        # against the dead socket, or nonzero mid-tear). Restart the
        # daemon and prove the client recovers to byte-identical output —
        # the torn first pass must leave no corrupting trace.
        if ! start_daemon "$jobs" ""; then
          echo "FAIL: $label $spec daemon did not restart after crash"
          fail=1
          continue
        fi
        if ! $RUN "$EXDLC" connect "$f1" "$f2" --socket "$SOCK" \
            --retries 6 --retry-base-ms 5 >"$out" 2>"$WORK/err.txt"; then
          echo "FAIL: $label $spec client did not recover after restart"
          sed 's/^/    /' "$WORK/err.txt" | head -5
          fail=1
          stop_daemon
          continue
        fi
        if ! cmp -s "$ref" "$out"; then
          echo "FAIL: $label $spec recovered output differs from reference"
          fail=1
        fi
        stop_daemon
        if [ "$DRC" -ne 0 ]; then
          echo "FAIL: $label $spec clean daemon shutdown rc=$DRC"
          fail=1
        fi
      done
    done
  done
}

# ---------------------------------------------------------------------------
# Durability sweep: the write-ahead fact log, its compaction, and startup
# replay (DESIGN.md §15), recovered across daemon restarts.

start_dur_daemon() {  # $1 = jobs, $2 = fault spec, $3 = data dir, $4 = compact-every
  rm -f "$SOCK"
  if [ -n "$2" ]; then
    EXDL_FAULT_SPEC="$2" "$EXDLD" --socket "$SOCK" --jobs "$1" \
      --data-dir "$3" --compact-every "$4" >"$WORK/dlog.txt" 2>&1 &
  else
    "$EXDLD" --socket "$SOCK" --jobs "$1" \
      --data-dir "$3" --compact-every "$4" >"$WORK/dlog.txt" 2>&1 &
  fi
  DPID=$!
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
    kill -0 "$DPID" 2>/dev/null || return 1
    sleep 0.05
    i=$((i + 1))
  done
  [ -S "$SOCK" ]
}

# SIGKILLs the daemon (the crash the durable EDB must survive).
kill9_daemon() {
  kill -9 "$DPID" 2>/dev/null
  wait "$DPID" 2>/dev/null
}

# Loads one fact file, re-issuing on a fail-mode injected failure (the
# only client-side recovery a non-retryable error permits). Returns 1 if
# the daemon died or the load never succeeded.
dur_load() {
  for _attempt in 1 2 3; do
    if $RUN "$EXDLC" connect --load-facts "$1" --socket "$SOCK" \
        --retries 6 --retry-base-ms 5 >/dev/null 2>"$WORK/err.txt"; then
      return 0
    fi
    kill -0 "$DPID" 2>/dev/null || return 1
  done
  return 1
}

dur_query() {  # $1 = output file
  $RUN "$EXDLC" connect "$WORK/dur_q.dl" --socket "$SOCK" \
    --retries 6 --retry-base-ms 5 >"$1" 2>"$WORK/err.txt"
}

run_durability_sweep() {  # $1 = jobs, $2 = label
  jobs=$1
  label=$2
  ref="$WORK/ref_dur.out"
  out="$WORK/dur_out.txt"
  if [ ! -f "$ref" ]; then
    # Uninterrupted reference: load all five fact files, query, shut down
    # cleanly. Computed once (serial); every recovered daemon — any pool
    # size — must reproduce it byte for byte.
    rm -rf "$WORK/dur_ref_dir"
    if ! start_dur_daemon 1 "" "$WORK/dur_ref_dir" 2; then
      echo "FAIL: durability reference daemon did not start"
      fail=1
      return
    fi
    for k in 1 2 3 4 5; do
      if ! dur_load "$WORK/dur_$k.facts"; then
        echo "FAIL: durability reference load $k failed"
        fail=1
        stop_daemon
        return
      fi
    done
    if ! dur_query "$ref"; then
      echo "FAIL: durability reference query failed"
      fail=1
      stop_daemon
      return
    fi
    stop_daemon
    if [ "$DRC" -ne 0 ]; then
      echo "FAIL: durability reference daemon shutdown rc=$DRC"
      fail=1
      return
    fi
  fi
  for site in $DUR_SITES; do
    for n in $(seq 1 "$MAX_HITS"); do
      for mode in fail abort; do
        cases=$((cases + 1))
        spec="$site:$n"
        [ "$mode" = abort ] && spec="$spec:abort"
        dir="$WORK/dur_${label}_$(printf '%s' "$site" | tr . _)_${n}_${mode}"
        rm -rf "$dir"
        if [ "$site" = "daemon.recover_replay" ]; then
          # Seed a five-record log tail (never compact), then SIGKILL.
          if ! start_dur_daemon "$jobs" "" "$dir" 0; then
            echo "FAIL: $label $spec seed daemon did not start"
            fail=1
            continue
          fi
          seed_ok=1
          for k in 1 2 3 4 5; do
            dur_load "$WORK/dur_$k.facts" || seed_ok=0
          done
          if [ "$seed_ok" -ne 1 ]; then
            echo "FAIL: $label $spec seeding loads failed"
            fail=1
            stop_daemon
            continue
          fi
          kill9_daemon
          # Armed restart: replay hits the fault. Fail mode must refuse to
          # start (fail closed — never a partial EDB); abort mode dies 86.
          if start_dur_daemon "$jobs" "$spec" "$dir" 0; then
            # Site not reached at this depth: full recovery, same answers.
            if ! dur_query "$out" || ! cmp -s "$ref" "$out"; then
              echo "FAIL: $label $spec unreached-restart answers differ"
              fail=1
            fi
            stop_daemon
            if [ "$DRC" -ne 0 ]; then
              echo "FAIL: $label $spec daemon shutdown rc=$DRC"
              fail=1
            fi
          else
            wait "$DPID" 2>/dev/null
            arc=$?
            if [ "$mode" = abort ] && [ "$arc" -ne 86 ]; then
              echo "FAIL: $label $spec armed restart rc=$arc (want 86)"
              fail=1
              continue
            fi
            if [ "$mode" = fail ] && ! grep -q "daemon.recover_replay" \
                "$WORK/dlog.txt"; then
              echo "FAIL: $label $spec armed restart rc=$arc without the" \
                   "injected-fault message"
              sed 's/^/    /' "$WORK/dlog.txt" | head -5
              fail=1
              continue
            fi
            mark_reached "$site"
          fi
          # Clean restart over the same directory must fully recover.
          if ! start_dur_daemon "$jobs" "" "$dir" 0; then
            echo "FAIL: $label $spec clean restart did not start"
            fail=1
            continue
          fi
          if ! dur_query "$out" || ! cmp -s "$ref" "$out"; then
            echo "FAIL: $label $spec recovered answers differ from reference"
            fail=1
          fi
          stop_daemon
          if [ "$DRC" -ne 0 ]; then
            echo "FAIL: $label $spec clean daemon shutdown rc=$DRC"
            fail=1
          fi
          continue
        fi
        # factlog.* sites: the armed daemon takes the five loads.
        if ! start_dur_daemon "$jobs" "$spec" "$dir" 2; then
          echo "FAIL: $label $spec daemon did not start"
          fail=1
          continue
        fi
        loads_ok=1
        for k in 1 2 3 4 5; do
          if ! dur_load "$WORK/dur_$k.facts"; then
            loads_ok=0
            break
          fi
        done
        if kill -0 "$DPID" 2>/dev/null; then
          # Fail mode (or unreached): every load must have gone through —
          # an injected append/fsync failure unwinds the log, so the
          # re-issued load must succeed against the live daemon.
          if [ "$loads_ok" -ne 1 ]; then
            echo "FAIL: $label $spec loads did not recover in-run"
            sed 's/^/    /' "$WORK/err.txt" | head -5
            fail=1
            stop_daemon
            continue
          fi
          if ! dur_query "$out" || ! cmp -s "$ref" "$out"; then
            echo "FAIL: $label $spec live answers differ from reference"
            fail=1
            stop_daemon
            continue
          fi
          # SIGKILL + restart: every acknowledged load was fsync'd, so the
          # recovered daemon must serve the same answers.
          kill9_daemon
        else
          # Daemon died mid-load: only the injected abort may do that.
          wait "$DPID" 2>/dev/null
          arc=$?
          if [ "$mode" != abort ] || [ "$arc" -ne 86 ]; then
            echo "FAIL: $label $spec daemon died rc=$arc (want abort 86)"
            fail=1
            continue
          fi
          mark_reached "$site"
        fi
        # Restart over the same directory (repairing any torn tail),
        # re-issue every load — answers are set-semantics, so reloading an
        # already-durable fact changes nothing — and diff.
        if ! start_dur_daemon "$jobs" "" "$dir" 2; then
          echo "FAIL: $label $spec daemon did not restart"
          sed 's/^/    /' "$WORK/dlog.txt" | head -5
          fail=1
          continue
        fi
        reload_ok=1
        for k in 1 2 3 4 5; do
          dur_load "$WORK/dur_$k.facts" || reload_ok=0
        done
        if [ "$reload_ok" -ne 1 ]; then
          echo "FAIL: $label $spec reload after restart failed"
          fail=1
          stop_daemon
          continue
        fi
        if ! dur_query "$out" || ! cmp -s "$ref" "$out"; then
          echo "FAIL: $label $spec recovered answers differ from reference"
          fail=1
        fi
        stop_daemon
        if [ "$DRC" -ne 0 ]; then
          echo "FAIL: $label $spec clean daemon shutdown rc=$DRC"
          fail=1
        fi
      done
    done
  done
}

# ---------------------------------------------------------------------------
# Sweep 1: the stock example, serial. Exercises arena growth and every
# snapshot I/O site; eval.pool_dispatch is unreachable serially (counts as
# "completed identical" at every depth, which the sweep verifies too).
run_engine_sweep "$REPO_ROOT/examples/tc_chain.dl" 1 serial

# Sweep 2: a chain long enough for the worker pool to engage (the pool
# partitions scans of >= 128 rows), 4 threads. Reaches eval.pool_dispatch
# and re-proves the snapshot sites under parallel evaluation.
# EXDL_POOL_MIN_DELTA_ROWS=1 disables the small-delta inline gate so the
# chain's delta rounds really dispatch (the fault site must stay reachable).
export EXDL_POOL_MIN_DELTA_ROWS=1
BIG="$WORK/big_chain.dl"
{
  echo "tc(X, Y) :- e(X, Y)."
  echo "tc(X, Z) :- e(X, Y), tc(Y, Z)."
  echo "?- tc(n0, X)."
  i=0
  while [ "$i" -lt 300 ]; do
    echo "e(n$i, n$((i + 1)))."
    i=$((i + 1))
  done
} >"$BIG"
run_engine_sweep "$BIG" 4 parallel

# Sweeps 3 + 4: the daemon sites, serial and 4-worker daemons.
if [ -n "$EXDLD" ]; then
  {
    echo "tc(X, Y) :- e(X, Y)."
    echo "tc(X, Z) :- e(X, Y), tc(Y, Z)."
    echo "?- tc(m0, X)."
    i=0
    while [ "$i" -lt 200 ]; do
      echo "e(m$i, m$((i + 1)))."
      i=$((i + 1))
    done
  } >"$WORK/sweep_a.dl"
  {
    echo "p(X) :- e(X, Y)."
    echo "?- p(X)."
    echo "e(a, b). e(b, c). e(c, a)."
  } >"$WORK/sweep_b.dl"
  run_daemon_sweep 1 daemon-serial
  run_daemon_sweep 4 daemon-4

  # Sweeps 5 + 6: the durable-EDB sites, serial and 4-worker daemons.
  for k in 1 2 3 4 5; do
    echo "p(d$k)." >"$WORK/dur_$k.facts"
  done
  {
    echo "q(X) :- p(X)."
    echo "?- q(X)."
  } >"$WORK/dur_q.dl"
  run_durability_sweep 1 dur-serial
  run_durability_sweep 4 dur-4
else
  echo "note: no exdld binary given — daemon.* sites skipped"
fi

# ---------------------------------------------------------------------------
# Coverage: every registered site must have fired at least once somewhere
# in the sweep (daemon sites only when the daemon was swept).
MUST_REACH=$ENGINE_SITES
[ -n "$EXDLD" ] && MUST_REACH="$ENGINE_SITES $DAEMON_SITES $DUR_SITES"
for site in $MUST_REACH; do
  if [ ! -f "$WORK/reached_$site" ]; then
    echo "FAIL: site $site was never reached by the sweep"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "fault sweep: FAILED ($cases cases)"
  exit 1
fi
echo "fault sweep: all $cases cases recovered to byte-identical output"
