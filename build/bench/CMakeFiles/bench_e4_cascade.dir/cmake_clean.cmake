file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_cascade.dir/bench_e4_cascade.cc.o"
  "CMakeFiles/bench_e4_cascade.dir/bench_e4_cascade.cc.o.d"
  "bench_e4_cascade"
  "bench_e4_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
