# Empty dependencies file for bench_e4_cascade.
# This may be replaced when dependencies are built.
