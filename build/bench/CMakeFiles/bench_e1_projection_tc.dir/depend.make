# Empty dependencies file for bench_e1_projection_tc.
# This may be replaced when dependencies are built.
