file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_projection_tc.dir/bench_e1_projection_tc.cc.o"
  "CMakeFiles/bench_e1_projection_tc.dir/bench_e1_projection_tc.cc.o.d"
  "bench_e1_projection_tc"
  "bench_e1_projection_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_projection_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
