# Empty compiler generated dependencies file for bench_e11_deletion_power.
# This may be replaced when dependencies are built.
