file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_deletion_power.dir/bench_e11_deletion_power.cc.o"
  "CMakeFiles/bench_e11_deletion_power.dir/bench_e11_deletion_power.cc.o.d"
  "bench_e11_deletion_power"
  "bench_e11_deletion_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_deletion_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
