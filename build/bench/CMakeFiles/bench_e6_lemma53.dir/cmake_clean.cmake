file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_lemma53.dir/bench_e6_lemma53.cc.o"
  "CMakeFiles/bench_e6_lemma53.dir/bench_e6_lemma53.cc.o.d"
  "bench_e6_lemma53"
  "bench_e6_lemma53.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_lemma53.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
