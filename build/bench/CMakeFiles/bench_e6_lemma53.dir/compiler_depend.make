# Empty compiler generated dependencies file for bench_e6_lemma53.
# This may be replaced when dependencies are built.
