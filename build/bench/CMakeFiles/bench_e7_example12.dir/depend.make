# Empty dependencies file for bench_e7_example12.
# This may be replaced when dependencies are built.
