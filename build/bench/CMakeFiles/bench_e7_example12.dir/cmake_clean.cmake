file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_example12.dir/bench_e7_example12.cc.o"
  "CMakeFiles/bench_e7_example12.dir/bench_e7_example12.cc.o.d"
  "bench_e7_example12"
  "bench_e7_example12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_example12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
