# Empty compiler generated dependencies file for bench_e10_summary_closure.
# This may be replaced when dependencies are built.
