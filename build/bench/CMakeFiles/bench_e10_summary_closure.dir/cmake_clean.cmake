file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_summary_closure.dir/bench_e10_summary_closure.cc.o"
  "CMakeFiles/bench_e10_summary_closure.dir/bench_e10_summary_closure.cc.o.d"
  "bench_e10_summary_closure"
  "bench_e10_summary_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_summary_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
