file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_monadic.dir/bench_e9_monadic.cc.o"
  "CMakeFiles/bench_e9_monadic.dir/bench_e9_monadic.cc.o.d"
  "bench_e9_monadic"
  "bench_e9_monadic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_monadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
