file(REMOVE_RECURSE
  "CMakeFiles/exdl_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/exdl_bench_util.dir/bench_util.cc.o.d"
  "libexdl_bench_util.a"
  "libexdl_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
