file(REMOVE_RECURSE
  "libexdl_bench_util.a"
)
