# Empty compiler generated dependencies file for exdl_bench_util.
# This may be replaced when dependencies are built.
