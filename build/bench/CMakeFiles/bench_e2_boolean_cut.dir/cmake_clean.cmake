file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_boolean_cut.dir/bench_e2_boolean_cut.cc.o"
  "CMakeFiles/bench_e2_boolean_cut.dir/bench_e2_boolean_cut.cc.o.d"
  "bench_e2_boolean_cut"
  "bench_e2_boolean_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_boolean_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
