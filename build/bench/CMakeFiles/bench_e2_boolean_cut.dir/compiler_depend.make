# Empty compiler generated dependencies file for bench_e2_boolean_cut.
# This may be replaced when dependencies are built.
