file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_uqe_deletion.dir/bench_e3_uqe_deletion.cc.o"
  "CMakeFiles/bench_e3_uqe_deletion.dir/bench_e3_uqe_deletion.cc.o.d"
  "bench_e3_uqe_deletion"
  "bench_e3_uqe_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_uqe_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
