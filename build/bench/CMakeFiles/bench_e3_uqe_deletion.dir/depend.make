# Empty dependencies file for bench_e3_uqe_deletion.
# This may be replaced when dependencies are built.
