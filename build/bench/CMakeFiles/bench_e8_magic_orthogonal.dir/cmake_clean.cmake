file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_magic_orthogonal.dir/bench_e8_magic_orthogonal.cc.o"
  "CMakeFiles/bench_e8_magic_orthogonal.dir/bench_e8_magic_orthogonal.cc.o.d"
  "bench_e8_magic_orthogonal"
  "bench_e8_magic_orthogonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_magic_orthogonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
