# Empty compiler generated dependencies file for bench_e8_magic_orthogonal.
# This may be replaced when dependencies are built.
