# Empty dependencies file for bench_e12_folding.
# This may be replaced when dependencies are built.
