file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_folding.dir/bench_e12_folding.cc.o"
  "CMakeFiles/bench_e12_folding.dir/bench_e12_folding.cc.o.d"
  "bench_e12_folding"
  "bench_e12_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
