file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_empty_answer.dir/bench_e5_empty_answer.cc.o"
  "CMakeFiles/bench_e5_empty_answer.dir/bench_e5_empty_answer.cc.o.d"
  "bench_e5_empty_answer"
  "bench_e5_empty_answer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_empty_answer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
