# Empty dependencies file for bench_e5_empty_answer.
# This may be replaced when dependencies are built.
