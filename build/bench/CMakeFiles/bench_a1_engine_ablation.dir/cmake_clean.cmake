file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_engine_ablation.dir/bench_a1_engine_ablation.cc.o"
  "CMakeFiles/bench_a1_engine_ablation.dir/bench_a1_engine_ablation.cc.o.d"
  "bench_a1_engine_ablation"
  "bench_a1_engine_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_engine_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
