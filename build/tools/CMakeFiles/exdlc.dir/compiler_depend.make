# Empty compiler generated dependencies file for exdlc.
# This may be replaced when dependencies are built.
