# Empty dependencies file for exdlc.
# This may be replaced when dependencies are built.
