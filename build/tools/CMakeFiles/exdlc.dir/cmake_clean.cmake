file(REMOVE_RECURSE
  "CMakeFiles/exdlc.dir/exdlc.cc.o"
  "CMakeFiles/exdlc.dir/exdlc.cc.o.d"
  "exdlc"
  "exdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
