file(REMOVE_RECURSE
  "libexdl_transform.a"
)
