file(REMOVE_RECURSE
  "CMakeFiles/exdl_transform.dir/transform/cleanup.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/cleanup.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/components.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/components.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/folding.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/folding.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/magic.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/magic.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/projection.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/projection.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/rule_deletion.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/rule_deletion.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/subsumption.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/subsumption.cc.o.d"
  "CMakeFiles/exdl_transform.dir/transform/unit_rules.cc.o"
  "CMakeFiles/exdl_transform.dir/transform/unit_rules.cc.o.d"
  "libexdl_transform.a"
  "libexdl_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
