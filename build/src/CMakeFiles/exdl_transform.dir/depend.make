# Empty dependencies file for exdl_transform.
# This may be replaced when dependencies are built.
