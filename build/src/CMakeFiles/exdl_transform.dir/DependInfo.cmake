
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/cleanup.cc" "src/CMakeFiles/exdl_transform.dir/transform/cleanup.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/cleanup.cc.o.d"
  "/root/repo/src/transform/components.cc" "src/CMakeFiles/exdl_transform.dir/transform/components.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/components.cc.o.d"
  "/root/repo/src/transform/folding.cc" "src/CMakeFiles/exdl_transform.dir/transform/folding.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/folding.cc.o.d"
  "/root/repo/src/transform/magic.cc" "src/CMakeFiles/exdl_transform.dir/transform/magic.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/magic.cc.o.d"
  "/root/repo/src/transform/projection.cc" "src/CMakeFiles/exdl_transform.dir/transform/projection.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/projection.cc.o.d"
  "/root/repo/src/transform/rule_deletion.cc" "src/CMakeFiles/exdl_transform.dir/transform/rule_deletion.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/rule_deletion.cc.o.d"
  "/root/repo/src/transform/subsumption.cc" "src/CMakeFiles/exdl_transform.dir/transform/subsumption.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/subsumption.cc.o.d"
  "/root/repo/src/transform/unit_rules.cc" "src/CMakeFiles/exdl_transform.dir/transform/unit_rules.cc.o" "gcc" "src/CMakeFiles/exdl_transform.dir/transform/unit_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exdl_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_adorn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
