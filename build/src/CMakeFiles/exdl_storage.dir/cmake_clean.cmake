file(REMOVE_RECURSE
  "CMakeFiles/exdl_storage.dir/storage/database.cc.o"
  "CMakeFiles/exdl_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/exdl_storage.dir/storage/relation.cc.o"
  "CMakeFiles/exdl_storage.dir/storage/relation.cc.o.d"
  "libexdl_storage.a"
  "libexdl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
