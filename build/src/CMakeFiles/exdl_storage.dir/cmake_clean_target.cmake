file(REMOVE_RECURSE
  "libexdl_storage.a"
)
