# Empty dependencies file for exdl_storage.
# This may be replaced when dependencies are built.
