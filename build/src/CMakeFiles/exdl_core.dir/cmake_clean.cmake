file(REMOVE_RECURSE
  "CMakeFiles/exdl_core.dir/core/optimizer.cc.o"
  "CMakeFiles/exdl_core.dir/core/optimizer.cc.o.d"
  "CMakeFiles/exdl_core.dir/core/report.cc.o"
  "CMakeFiles/exdl_core.dir/core/report.cc.o.d"
  "CMakeFiles/exdl_core.dir/core/workload.cc.o"
  "CMakeFiles/exdl_core.dir/core/workload.cc.o.d"
  "libexdl_core.a"
  "libexdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
