# Empty compiler generated dependencies file for exdl_core.
# This may be replaced when dependencies are built.
