file(REMOVE_RECURSE
  "libexdl_core.a"
)
