file(REMOVE_RECURSE
  "CMakeFiles/exdl_parser.dir/parser/lexer.cc.o"
  "CMakeFiles/exdl_parser.dir/parser/lexer.cc.o.d"
  "CMakeFiles/exdl_parser.dir/parser/parser.cc.o"
  "CMakeFiles/exdl_parser.dir/parser/parser.cc.o.d"
  "libexdl_parser.a"
  "libexdl_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
