file(REMOVE_RECURSE
  "libexdl_parser.a"
)
