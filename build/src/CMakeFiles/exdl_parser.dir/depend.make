# Empty dependencies file for exdl_parser.
# This may be replaced when dependencies are built.
