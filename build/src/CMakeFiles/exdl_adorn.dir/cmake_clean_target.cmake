file(REMOVE_RECURSE
  "libexdl_adorn.a"
)
