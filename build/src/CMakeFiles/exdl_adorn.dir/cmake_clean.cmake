file(REMOVE_RECURSE
  "CMakeFiles/exdl_adorn.dir/adorn/adorn.cc.o"
  "CMakeFiles/exdl_adorn.dir/adorn/adorn.cc.o.d"
  "libexdl_adorn.a"
  "libexdl_adorn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_adorn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
