# Empty dependencies file for exdl_adorn.
# This may be replaced when dependencies are built.
