file(REMOVE_RECURSE
  "libexdl_analysis.a"
)
