# Empty dependencies file for exdl_analysis.
# This may be replaced when dependencies are built.
