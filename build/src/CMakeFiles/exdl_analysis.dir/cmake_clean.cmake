file(REMOVE_RECURSE
  "CMakeFiles/exdl_analysis.dir/analysis/connectivity.cc.o"
  "CMakeFiles/exdl_analysis.dir/analysis/connectivity.cc.o.d"
  "CMakeFiles/exdl_analysis.dir/analysis/dependency_graph.cc.o"
  "CMakeFiles/exdl_analysis.dir/analysis/dependency_graph.cc.o.d"
  "CMakeFiles/exdl_analysis.dir/analysis/reachability.cc.o"
  "CMakeFiles/exdl_analysis.dir/analysis/reachability.cc.o.d"
  "CMakeFiles/exdl_analysis.dir/analysis/stratification.cc.o"
  "CMakeFiles/exdl_analysis.dir/analysis/stratification.cc.o.d"
  "libexdl_analysis.a"
  "libexdl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
