file(REMOVE_RECURSE
  "libexdl_grammar.a"
)
