# Empty dependencies file for exdl_grammar.
# This may be replaced when dependencies are built.
