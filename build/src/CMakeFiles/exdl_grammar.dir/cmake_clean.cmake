file(REMOVE_RECURSE
  "CMakeFiles/exdl_grammar.dir/grammar/cfg.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/cfg.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/chain.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/chain.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/dfa.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/dfa.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/equivalence.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/equivalence.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/language.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/language.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/monadic.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/monadic.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/nfa.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/nfa.cc.o.d"
  "CMakeFiles/exdl_grammar.dir/grammar/regularity.cc.o"
  "CMakeFiles/exdl_grammar.dir/grammar/regularity.cc.o.d"
  "libexdl_grammar.a"
  "libexdl_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
