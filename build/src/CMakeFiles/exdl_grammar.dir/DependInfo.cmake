
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammar/cfg.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/cfg.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/cfg.cc.o.d"
  "/root/repo/src/grammar/chain.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/chain.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/chain.cc.o.d"
  "/root/repo/src/grammar/dfa.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/dfa.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/dfa.cc.o.d"
  "/root/repo/src/grammar/equivalence.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/equivalence.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/equivalence.cc.o.d"
  "/root/repo/src/grammar/language.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/language.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/language.cc.o.d"
  "/root/repo/src/grammar/monadic.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/monadic.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/monadic.cc.o.d"
  "/root/repo/src/grammar/nfa.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/nfa.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/nfa.cc.o.d"
  "/root/repo/src/grammar/regularity.cc" "src/CMakeFiles/exdl_grammar.dir/grammar/regularity.cc.o" "gcc" "src/CMakeFiles/exdl_grammar.dir/grammar/regularity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exdl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
