file(REMOVE_RECURSE
  "CMakeFiles/exdl_ast.dir/ast/adornment.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/adornment.cc.o.d"
  "CMakeFiles/exdl_ast.dir/ast/atom.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/atom.cc.o.d"
  "CMakeFiles/exdl_ast.dir/ast/context.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/context.cc.o.d"
  "CMakeFiles/exdl_ast.dir/ast/printer.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/printer.cc.o.d"
  "CMakeFiles/exdl_ast.dir/ast/program.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/program.cc.o.d"
  "CMakeFiles/exdl_ast.dir/ast/rule.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/rule.cc.o.d"
  "CMakeFiles/exdl_ast.dir/ast/term.cc.o"
  "CMakeFiles/exdl_ast.dir/ast/term.cc.o.d"
  "libexdl_ast.a"
  "libexdl_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
