# Empty dependencies file for exdl_ast.
# This may be replaced when dependencies are built.
