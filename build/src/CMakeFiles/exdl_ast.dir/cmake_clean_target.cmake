file(REMOVE_RECURSE
  "libexdl_ast.a"
)
