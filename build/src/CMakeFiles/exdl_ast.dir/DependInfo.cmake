
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/adornment.cc" "src/CMakeFiles/exdl_ast.dir/ast/adornment.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/adornment.cc.o.d"
  "/root/repo/src/ast/atom.cc" "src/CMakeFiles/exdl_ast.dir/ast/atom.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/atom.cc.o.d"
  "/root/repo/src/ast/context.cc" "src/CMakeFiles/exdl_ast.dir/ast/context.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/context.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/CMakeFiles/exdl_ast.dir/ast/printer.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/printer.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/CMakeFiles/exdl_ast.dir/ast/program.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/CMakeFiles/exdl_ast.dir/ast/rule.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/rule.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/CMakeFiles/exdl_ast.dir/ast/term.cc.o" "gcc" "src/CMakeFiles/exdl_ast.dir/ast/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
