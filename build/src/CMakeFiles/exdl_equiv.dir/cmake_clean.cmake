file(REMOVE_RECURSE
  "CMakeFiles/exdl_equiv.dir/equiv/argument_projection.cc.o"
  "CMakeFiles/exdl_equiv.dir/equiv/argument_projection.cc.o.d"
  "CMakeFiles/exdl_equiv.dir/equiv/freeze.cc.o"
  "CMakeFiles/exdl_equiv.dir/equiv/freeze.cc.o.d"
  "CMakeFiles/exdl_equiv.dir/equiv/optimistic.cc.o"
  "CMakeFiles/exdl_equiv.dir/equiv/optimistic.cc.o.d"
  "CMakeFiles/exdl_equiv.dir/equiv/random_check.cc.o"
  "CMakeFiles/exdl_equiv.dir/equiv/random_check.cc.o.d"
  "CMakeFiles/exdl_equiv.dir/equiv/summary_closure.cc.o"
  "CMakeFiles/exdl_equiv.dir/equiv/summary_closure.cc.o.d"
  "CMakeFiles/exdl_equiv.dir/equiv/uniform_equivalence.cc.o"
  "CMakeFiles/exdl_equiv.dir/equiv/uniform_equivalence.cc.o.d"
  "libexdl_equiv.a"
  "libexdl_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
