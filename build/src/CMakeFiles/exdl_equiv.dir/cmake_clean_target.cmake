file(REMOVE_RECURSE
  "libexdl_equiv.a"
)
