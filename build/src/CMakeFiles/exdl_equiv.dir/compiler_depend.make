# Empty compiler generated dependencies file for exdl_equiv.
# This may be replaced when dependencies are built.
