
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/equiv/argument_projection.cc" "src/CMakeFiles/exdl_equiv.dir/equiv/argument_projection.cc.o" "gcc" "src/CMakeFiles/exdl_equiv.dir/equiv/argument_projection.cc.o.d"
  "/root/repo/src/equiv/freeze.cc" "src/CMakeFiles/exdl_equiv.dir/equiv/freeze.cc.o" "gcc" "src/CMakeFiles/exdl_equiv.dir/equiv/freeze.cc.o.d"
  "/root/repo/src/equiv/optimistic.cc" "src/CMakeFiles/exdl_equiv.dir/equiv/optimistic.cc.o" "gcc" "src/CMakeFiles/exdl_equiv.dir/equiv/optimistic.cc.o.d"
  "/root/repo/src/equiv/random_check.cc" "src/CMakeFiles/exdl_equiv.dir/equiv/random_check.cc.o" "gcc" "src/CMakeFiles/exdl_equiv.dir/equiv/random_check.cc.o.d"
  "/root/repo/src/equiv/summary_closure.cc" "src/CMakeFiles/exdl_equiv.dir/equiv/summary_closure.cc.o" "gcc" "src/CMakeFiles/exdl_equiv.dir/equiv/summary_closure.cc.o.d"
  "/root/repo/src/equiv/uniform_equivalence.cc" "src/CMakeFiles/exdl_equiv.dir/equiv/uniform_equivalence.cc.o" "gcc" "src/CMakeFiles/exdl_equiv.dir/equiv/uniform_equivalence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exdl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_adorn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
