file(REMOVE_RECURSE
  "libexdl_eval.a"
)
