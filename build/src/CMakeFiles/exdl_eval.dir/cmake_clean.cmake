file(REMOVE_RECURSE
  "CMakeFiles/exdl_eval.dir/eval/evaluator.cc.o"
  "CMakeFiles/exdl_eval.dir/eval/evaluator.cc.o.d"
  "CMakeFiles/exdl_eval.dir/eval/plan.cc.o"
  "CMakeFiles/exdl_eval.dir/eval/plan.cc.o.d"
  "libexdl_eval.a"
  "libexdl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
