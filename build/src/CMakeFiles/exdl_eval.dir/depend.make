# Empty dependencies file for exdl_eval.
# This may be replaced when dependencies are built.
