# Empty compiler generated dependencies file for exdl_util.
# This may be replaced when dependencies are built.
