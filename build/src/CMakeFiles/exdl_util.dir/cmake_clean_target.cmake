file(REMOVE_RECURSE
  "libexdl_util.a"
)
