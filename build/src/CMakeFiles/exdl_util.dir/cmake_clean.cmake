file(REMOVE_RECURSE
  "CMakeFiles/exdl_util.dir/util/rng.cc.o"
  "CMakeFiles/exdl_util.dir/util/rng.cc.o.d"
  "CMakeFiles/exdl_util.dir/util/status.cc.o"
  "CMakeFiles/exdl_util.dir/util/status.cc.o.d"
  "CMakeFiles/exdl_util.dir/util/string_util.cc.o"
  "CMakeFiles/exdl_util.dir/util/string_util.cc.o.d"
  "libexdl_util.a"
  "libexdl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
