# Empty dependencies file for chain_equivalence_test.
# This may be replaced when dependencies are built.
