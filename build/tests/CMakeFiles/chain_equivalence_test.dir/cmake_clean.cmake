file(REMOVE_RECURSE
  "CMakeFiles/chain_equivalence_test.dir/chain_equivalence_test.cc.o"
  "CMakeFiles/chain_equivalence_test.dir/chain_equivalence_test.cc.o.d"
  "chain_equivalence_test"
  "chain_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
