file(REMOVE_RECURSE
  "libexdl_testing.a"
)
