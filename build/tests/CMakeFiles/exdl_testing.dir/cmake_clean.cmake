file(REMOVE_RECURSE
  "CMakeFiles/exdl_testing.dir/testing/test_util.cc.o"
  "CMakeFiles/exdl_testing.dir/testing/test_util.cc.o.d"
  "libexdl_testing.a"
  "libexdl_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exdl_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
