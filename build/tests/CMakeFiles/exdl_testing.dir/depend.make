# Empty dependencies file for exdl_testing.
# This may be replaced when dependencies are built.
