file(REMOVE_RECURSE
  "CMakeFiles/summary_test.dir/summary_test.cc.o"
  "CMakeFiles/summary_test.dir/summary_test.cc.o.d"
  "summary_test"
  "summary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
