file(REMOVE_RECURSE
  "CMakeFiles/api_surface_test.dir/api_surface_test.cc.o"
  "CMakeFiles/api_surface_test.dir/api_surface_test.cc.o.d"
  "api_surface_test"
  "api_surface_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
