file(REMOVE_RECURSE
  "CMakeFiles/uniform_equivalence_test.dir/uniform_equivalence_test.cc.o"
  "CMakeFiles/uniform_equivalence_test.dir/uniform_equivalence_test.cc.o.d"
  "uniform_equivalence_test"
  "uniform_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniform_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
