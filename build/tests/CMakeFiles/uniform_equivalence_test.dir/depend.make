# Empty dependencies file for uniform_equivalence_test.
# This may be replaced when dependencies are built.
