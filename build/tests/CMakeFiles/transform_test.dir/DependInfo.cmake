
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/transform_test.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/transform_test.dir/transform_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/exdl_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_adorn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
