file(REMOVE_RECURSE
  "CMakeFiles/grammar_test.dir/grammar_test.cc.o"
  "CMakeFiles/grammar_test.dir/grammar_test.cc.o.d"
  "grammar_test"
  "grammar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
