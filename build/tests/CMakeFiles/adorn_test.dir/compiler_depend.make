# Empty compiler generated dependencies file for adorn_test.
# This may be replaced when dependencies are built.
