file(REMOVE_RECURSE
  "CMakeFiles/adorn_test.dir/adorn_test.cc.o"
  "CMakeFiles/adorn_test.dir/adorn_test.cc.o.d"
  "adorn_test"
  "adorn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adorn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
