file(REMOVE_RECURSE
  "CMakeFiles/stratified_policies.dir/stratified_policies.cc.o"
  "CMakeFiles/stratified_policies.dir/stratified_policies.cc.o.d"
  "stratified_policies"
  "stratified_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratified_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
