# Empty dependencies file for stratified_policies.
# This may be replaced when dependencies are built.
