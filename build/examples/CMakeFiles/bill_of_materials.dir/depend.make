# Empty dependencies file for bill_of_materials.
# This may be replaced when dependencies are built.
