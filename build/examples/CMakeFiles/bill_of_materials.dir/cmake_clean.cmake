file(REMOVE_RECURSE
  "CMakeFiles/bill_of_materials.dir/bill_of_materials.cc.o"
  "CMakeFiles/bill_of_materials.dir/bill_of_materials.cc.o.d"
  "bill_of_materials"
  "bill_of_materials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bill_of_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
