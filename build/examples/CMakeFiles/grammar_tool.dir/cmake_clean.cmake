file(REMOVE_RECURSE
  "CMakeFiles/grammar_tool.dir/grammar_tool.cc.o"
  "CMakeFiles/grammar_tool.dir/grammar_tool.cc.o.d"
  "grammar_tool"
  "grammar_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
