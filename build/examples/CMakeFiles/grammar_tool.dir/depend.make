# Empty dependencies file for grammar_tool.
# This may be replaced when dependencies are built.
