file(REMOVE_RECURSE
  "CMakeFiles/social_reachability.dir/social_reachability.cc.o"
  "CMakeFiles/social_reachability.dir/social_reachability.cc.o.d"
  "social_reachability"
  "social_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
