# Empty compiler generated dependencies file for social_reachability.
# This may be replaced when dependencies are built.
